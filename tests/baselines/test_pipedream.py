"""Unit tests for the PipeDream baseline planner."""

import pytest

from repro.baselines import pipedream_plan
from repro.cluster import config_a, config_b
from repro.core import Planner, profile_model
from repro.core.latency import evaluate_plan
from repro.models import uniform_model, vgg19


class TestPipeDreamPlanner:
    def test_plan_valid_and_uses_all_devices(self):
        m = uniform_model("u", 12, 5e9, 10_000_000, 1e6, profile_batch=4)
        c = config_b(4)
        res = pipedream_plan(profile_model(m), c, 32)
        res.plan.validate()
        assert res.plan.num_devices == 4
        assert res.bottleneck_time > 0

    def test_bounds_cover_model(self):
        m = uniform_model("u", 10, 5e9, 1_000_000, 1e6, profile_batch=4)
        c = config_b(4)
        res = pipedream_plan(profile_model(m), c, 32)
        assert res.stage_layer_bounds[0] == 0
        assert res.stage_layer_bounds[-1] == 10
        assert sum(res.stage_replicas) == 4

    def test_uniform_cheap_sync_prefers_replication(self):
        # Tiny params (free weight sync) but fat activations (expensive
        # inter-stage comm): one replicated stage strictly beats pipelining.
        m = uniform_model("u", 8, 5e9, 1000, 1e8, profile_batch=4)
        c = config_a(1)
        res = pipedream_plan(profile_model(m), c, 32)
        assert max(res.stage_replicas) >= 4

    def test_heavy_params_prefer_more_stages(self):
        # Per-mini-batch weight sync makes replication expensive for fat
        # layers on Ethernet -> deeper pipelines.
        fat = uniform_model("fat", 8, 5e9, 80_000_000, 1e5, profile_batch=4)
        thin = uniform_model("thin", 8, 5e9, 1000, 1e5, profile_batch=4)
        c = config_b(4)
        fat_res = pipedream_plan(profile_model(fat), c, 32)
        thin_res = pipedream_plan(profile_model(thin), c, 32)
        assert fat_res.plan.num_stages >= thin_res.plan.num_stages

    def test_dapple_beats_pipedream_under_sync_eval(self):
        """The paper's §VI-F claim, evaluated analytically."""
        prof = profile_model(vgg19())
        c = config_a(2)
        pd = pipedream_plan(prof, c, 1024)
        dap = Planner(prof, c, 1024).search()
        pd_latency = evaluate_plan(prof, c, pd.plan).latency
        assert dap.estimate.latency <= pd_latency

    def test_contiguous_device_assignment(self):
        m = uniform_model("u", 12, 5e9, 10_000_000, 1e6, profile_batch=4)
        c = config_b(4)
        res = pipedream_plan(profile_model(m), c, 32)
        ids = [d.global_id for s in res.plan.stages for d in s.devices]
        assert ids == sorted(ids) == list(range(4))

"""Tests for the two-level (hierarchical) PipeDream planner."""

import pytest

from repro.baselines import pipedream_plan, pipedream_plan_hierarchical
from repro.cluster import config_a, config_b
from repro.core import profile_model
from repro.models import uniform_model, vgg19


class TestHierarchicalPipeDream:
    def test_flat_cluster_falls_back_to_single_level(self):
        m = uniform_model("u", 8, 5e9, 1_000_000, 1e6, profile_batch=2)
        prof = profile_model(m)
        c = config_b(4)
        hier = pipedream_plan_hierarchical(prof, c, 32)
        flat = pipedream_plan(prof, c, 32)
        assert hier.stage_layer_bounds == flat.stage_layer_bounds
        assert hier.stage_replicas == flat.stage_replicas

    def test_plan_valid_on_config_a(self):
        prof = profile_model(vgg19())
        res = pipedream_plan_hierarchical(prof, config_a(2), 1024)
        res.plan.validate()
        assert res.plan.num_devices == 16
        assert res.bottleneck_time > 0

    def test_reproduces_paper_vgg_strategy_shape(self):
        """Table VII: PipeDream's VGG strategy puts convs on a replicated
        block and the fc layers on single GPUs."""
        prof = profile_model(vgg19())
        res = pipedream_plan_hierarchical(prof, config_a(2), 1024)
        # First stage: large replicated conv block starting at layer 0.
        assert res.stage_replicas[0] >= 6
        assert res.stage_layer_bounds[0] == 0
        # Tail: at least one single-GPU fc stage.
        assert 1 in res.stage_replicas[1:]

    def test_stage_devices_respect_machine_boundaries(self):
        prof = profile_model(vgg19())
        res = pipedream_plan_hierarchical(prof, config_a(2), 1024)
        for stage in res.plan.stages:
            machines = {d.machine_id for d in stage.devices}
            # Inner-level stages live in one machine; only whole-machine
            # replication blocks may span machines.
            if len(stage.devices) < 8:
                assert len(machines) == 1

    def test_uniform_model_balanced(self):
        m = uniform_model("u", 16, 5e9, 2_000_000, 1e6, profile_batch=2)
        prof = profile_model(m)
        res = pipedream_plan_hierarchical(prof, config_a(2), 64)
        res.plan.validate()
        assert sum(res.stage_replicas) == 16

"""Shared fixtures for the conformance-check suite: one tiny two-stage
replicated pipeline, cheap enough that every test rebuilds/simulates it."""

import pytest

from repro.cluster.configs import config_by_name
from repro.core.plan import ParallelPlan, Stage
from repro.core.profiler import profile_model
from repro.models.graph import uniform_model
from repro.runtime.executor import PipelineExecutor


@pytest.fixture(scope="module")
def tiny():
    """(profile, cluster, plan): 4 uniform layers, 2 stages x 2 replicas."""
    model = uniform_model(
        name="tiny-check",
        num_layers=4,
        flops_per_layer=1e9,
        params_per_layer=100_000,
        activation_bytes=1e6,
    )
    cluster = config_by_name("B", num_devices=4)
    prof = profile_model(model)
    devs = cluster.devices
    plan = ParallelPlan(
        model=model,
        stages=[
            Stage(0, 2, (devs[0], devs[1])),
            Stage(2, 4, (devs[2], devs[3])),
        ],
        global_batch_size=8,
        num_micro_batches=4,
    )
    return prof, cluster, plan


@pytest.fixture
def tiny_executor(tiny):
    prof, cluster, plan = tiny
    return PipelineExecutor(prof, cluster, plan)

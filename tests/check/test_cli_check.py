"""End-to-end ``repro check`` CLI behaviour."""

from repro.cli import main


ARGS = ["check", "--model", "vgg19", "--config", "B", "--devices", "4",
        "--gbs", "64"]


class TestCheckCommand:
    def test_single_model_passes(self, capsys):
        assert main(ARGS + ["--no-oracles", "--generated", "2"]) == 0
        out = capsys.readouterr().out
        assert "all conformance checks passed" in out
        for cell in ("DAPPLE", "GPipe", "DP", "compiled", "reference"):
            assert cell in out
        assert "gen seed=0" in out

    def test_oracles_row_present_by_default(self, capsys):
        assert main(ARGS) == 0
        assert "oracles" in capsys.readouterr().out

    def test_engine_restriction(self, capsys):
        assert main(ARGS + ["--engine", "compiled", "--no-oracles"]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "reference" not in out

    def test_metrics_flag_reports_check_spans(self, capsys):
        assert main(ARGS + ["--no-oracles", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "check.suite" in out
        assert "check.invariants_run" in out

    def test_violations_exit_2_and_name_the_invariant(self, capsys, monkeypatch):
        import repro.check
        from repro.check.invariants import ConformanceReport, Violation

        def fake_verify(*a, **k):
            rep = ConformanceReport(subject="forced")
            rep.ran("warmup-count")
            rep.add(Violation(
                "warmup-count", "synthetic failure", op="F/s1/m2/r0", stage=1
            ))
            return rep

        monkeypatch.setattr(repro.check, "verify_execution", fake_verify)
        assert main(ARGS + ["--no-oracles"]) == 2
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.out
        assert "warmup-count" in captured.err
        assert "F/s1/m2/r0" in captured.err

    def test_unknown_model_exits_2(self, capsys):
        assert main(["check", "--model", "frobnicate"]) == 2
        assert "error:" in capsys.readouterr().err

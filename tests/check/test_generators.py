"""Seeded generators: reproducible, always-valid instances."""

import random

import pytest
from hypothesis import given, settings

from repro.check import generate_cases, random_case, verify_execution
from repro.check.generators import case_strategy, random_schedule, schedule_strategy
from repro.core.scheduler import validate_schedule


class TestRandomCase:
    def test_same_seed_same_case(self):
        a, b = random_case(42), random_case(42)
        assert a.plan.notation == b.plan.notation
        assert a.plan.split_notation == b.plan.split_notation
        assert a.plan.num_micro_batches == b.plan.num_micro_batches
        assert a.warmup_policy == b.warmup_policy
        assert a.plan.model.num_layers == b.plan.model.num_layers

    def test_different_seeds_vary(self):
        cases = generate_cases(30)
        assert len({c.plan.notation for c in cases}) > 3
        assert {c.warmup_policy for c in cases} == {"PA", "PB"}

    def test_generated_plans_are_feasible_and_conformant(self):
        for case in generate_cases(8, base_seed=100):
            report = verify_execution(
                case.profile, case.cluster, case.plan,
                warmup_policy=case.warmup_policy,
            )
            assert report.ok, f"{case}: {report.render()}"


class TestRandomSchedule:
    @pytest.mark.parametrize("m", [1, 2, 5, 9])
    def test_always_valid(self, m):
        for seed in range(10):
            tasks = random_schedule(m, random.Random(seed))
            validate_schedule([tasks], m)
            assert len(tasks) == 2 * m

    def test_deterministic_per_seed(self):
        a = random_schedule(6, random.Random(7))
        b = random_schedule(6, random.Random(7))
        assert a == b


class TestHypothesisStrategies:
    @given(case=case_strategy(max_seed=200))
    @settings(max_examples=10, deadline=None)
    def test_case_strategy_yields_valid_plans(self, case):
        case.plan.validate()
        assert case.cluster.num_devices >= case.plan.num_devices

    @given(tasks=schedule_strategy(max_micro_batches=8))
    @settings(max_examples=25, deadline=None)
    def test_schedule_strategy_yields_valid_schedules(self, tasks):
        m = sum(1 for t in tasks if t.kind == "F")
        validate_schedule([tasks], m)

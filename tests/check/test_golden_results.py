"""Golden-result regression: deterministic experiment subsets must
reproduce their committed snapshots byte-for-byte.

Each golden file under ``tests/golden/`` is the exact ``format_results``
output of a small fixed grid slice (one model/config/GBS point).  A diff
here means simulated numbers, planner decisions, or table formatting
changed — any of which silently invalidates the committed ``results/``
tables, so it must be deliberate: regenerate the snapshot (run the subset
and overwrite the file) in the same change that alters the behaviour.

The consistency tests additionally assert the committed *full* results
files still contain the freshly-computed subset rows cell-for-cell, so a
code change that forgets to regenerate ``results/`` fails here too.
"""

from pathlib import Path

import pytest

GOLDEN = Path(__file__).resolve().parent.parent / "golden"
RESULTS = Path(__file__).resolve().parent.parent.parent / "results"


def _cells(line: str) -> list[str]:
    return [c.strip() for c in line.split("|")]


def _find_row(text: str, key_cells: list[str]) -> list[str] | None:
    """First row of a formatted table whose leading cells equal ``key_cells``."""
    n = len(key_cells)
    for line in text.splitlines():
        if "|" in line and _cells(line)[:n] == key_cells:
            return _cells(line)
    return None


@pytest.fixture(scope="module")
def fig12_subset() -> str:
    from repro.experiments import fig12

    pts = fig12.run(models=["vgg19"], configs=["A"], sweeps={"vgg19": [1024]})
    return fig12.format_results(pts)


@pytest.fixture(scope="module")
def table7_subset() -> str:
    from repro.experiments import table7

    return table7.format_results([table7.row("vgg19", 1024, 2)])


@pytest.fixture(scope="module")
def straggler_subset() -> str:
    from repro.experiments import straggler_sweep

    p = straggler_sweep.point("bert48", "A", 1.25, num_seeds=8, base_seed=0)
    return straggler_sweep.format_results([p])


class TestGoldenSnapshots:
    def test_fig12_reproduces_byte_for_byte(self, fig12_subset):
        assert fig12_subset + "\n" == (GOLDEN / "fig12_vgg19_A_1024.txt").read_text()

    def test_table7_reproduces_byte_for_byte(self, table7_subset):
        assert table7_subset + "\n" == (GOLDEN / "table7_vgg19_2x8.txt").read_text()

    def test_straggler_reproduces_byte_for_byte(self, straggler_subset):
        assert straggler_subset + "\n" == (
            GOLDEN / "straggler_bert48_A_1.25.txt"
        ).read_text()

    def test_rerun_is_deterministic(self, straggler_subset):
        from repro.experiments import straggler_sweep

        again = straggler_sweep.format_results(
            [straggler_sweep.point("bert48", "A", 1.25, num_seeds=8, base_seed=0)]
        )
        assert again == straggler_subset


class TestCommittedResultsConsistency:
    """The full ``results/*.txt`` tables agree with a fresh subset run."""

    def test_fig12_results_row_matches(self, fig12_subset):
        committed = (RESULTS / "fig12_speedups.txt").read_text()
        fresh = _find_row(fig12_subset, ["vgg19", "A", "1024"])
        full = _find_row(committed, ["vgg19", "A", "1024"])
        assert fresh is not None and full is not None
        assert full == fresh, (
            "results/fig12_speedups.txt is stale for vgg19/A/1024 — "
            "regenerate with `repro experiment fig12`"
        )

    def test_table7_results_row_matches(self, table7_subset):
        committed = (RESULTS / "table7.txt").read_text()
        fresh = _find_row(table7_subset, ["VGG-19", "2x8"])
        full = _find_row(committed, ["VGG-19", "2x8"])
        assert fresh is not None and full is not None
        assert full == fresh, (
            "results/table7.txt is stale for VGG-19 2x8 — "
            "regenerate with `repro experiment table7`"
        )

    def test_straggler_results_rows_match(self, straggler_subset):
        committed = (RESULTS / "straggler_sweep.txt").read_text()
        for system in ("DAPPLE", "GPipe", "DP"):
            fresh = _find_row(
                straggler_subset, ["bert48", "A", "1.25", system]
            )
            full = _find_row(committed, ["bert48", "A", "1.25", system])
            assert fresh is not None and full is not None
            assert full == fresh, (
                f"results/straggler_sweep.txt is stale for bert48/A/1.25 "
                f"{system} — regenerate with `repro experiment straggler_sweep`"
            )

    def test_headers_match_formatters(self, fig12_subset, straggler_subset):
        for fname, subset in (
            ("fig12_speedups.txt", fig12_subset),
            ("straggler_sweep.txt", straggler_subset),
        ):
            committed = (RESULTS / fname).read_text()
            want = _cells(next(
                l for l in subset.splitlines() if l.startswith("Model")
            ))
            got = _cells(next(
                l for l in committed.splitlines() if l.startswith("Model")
            ))
            assert got == want, f"{fname} header drifted"

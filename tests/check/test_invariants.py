"""The conformance checker accepts every legitimate schedule shape."""

import pytest

from repro.check import check_execution, check_simulation, verify_execution
from repro.check.invariants import ConformanceError, Violation
from repro.sim.engine import SimulationResult, Simulator


class TestCleanRunsPass:
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    @pytest.mark.parametrize("schedule", ["dapple", "gpipe"])
    def test_tiny_pipeline_conforms(self, tiny, schedule, engine):
        prof, cluster, plan = tiny
        report = verify_execution(
            prof, cluster, plan, schedule=schedule, engine=engine
        )
        assert report.ok, report.render()
        assert len(report.checks) >= 10

    @pytest.mark.parametrize("policy", ["PA", "PB"])
    def test_both_warmup_policies(self, tiny, policy):
        prof, cluster, plan = tiny
        report = verify_execution(prof, cluster, plan, warmup_policy=policy)
        assert report.ok, report.render()
        assert "warmup-count" in report.checks

    def test_recompute_conforms(self, tiny):
        prof, cluster, plan = tiny
        report = verify_execution(prof, cluster, plan, recompute="boundary")
        assert report.ok, report.render()

    def test_dapple_checks_more_than_gpipe(self, tiny):
        prof, cluster, plan = tiny
        dapple = verify_execution(prof, cluster, plan, schedule="dapple")
        gpipe = verify_execution(prof, cluster, plan, schedule="gpipe")
        assert "warmup-count" in dapple.checks
        assert "warmup-count" not in gpipe.checks
        assert "gpipe-shape" in gpipe.checks


class TestReportType:
    def test_violation_str_names_op_stage_invariant(self):
        v = Violation(
            "warmup-count", "3 forwards, expected 2", op="F/s1/m2/r0", stage=1
        )
        s = str(v)
        assert "warmup-count" in s
        assert "F/s1/m2/r0" in s
        assert "stage=1" in s

    def test_raise_if_failed(self, tiny):
        prof, cluster, plan = tiny
        report = verify_execution(prof, cluster, plan)
        report.raise_if_failed()  # clean: no-op
        report.add(Violation("structure", "synthetic"))
        with pytest.raises(ConformanceError) as exc:
            report.raise_if_failed()
        assert exc.value.report is report
        assert "structure" in str(exc.value)


class TestSimulatorValidate:
    def test_validate_true_on_clean_graph(self, tiny_executor):
        graph = tiny_executor.build_graph()
        result = Simulator(graph).run(validate=True)
        assert result.makespan > 0

    def test_validate_catches_duration_tamper(self, tiny_executor):
        # Post-add mutation is only seen by the reference engine; the
        # compiled run's trace then contradicts the declared duration.
        graph = tiny_executor.build_graph()
        graph.op("F/s0/m0/r0").duration *= 7
        with pytest.raises(ConformanceError) as exc:
            Simulator(graph, engine="compiled").run(validate=True)
        assert any(
            v.invariant == "duration-fidelity" and v.op == "F/s0/m0/r0"
            for v in exc.value.report.violations
        )

    def test_env_var_enables_validation(self, tiny_executor, monkeypatch):
        graph = tiny_executor.build_graph()
        graph.op("B/s1/m1/r0").duration *= 3
        monkeypatch.setenv("REPRO_SIM_VALIDATE", "1")
        with pytest.raises(ConformanceError):
            Simulator(graph, engine="compiled").run()
        monkeypatch.setenv("REPRO_SIM_VALIDATE", "0")
        Simulator(graph, engine="compiled").run()  # off: no scan, no raise


class TestLowerBound:
    def test_understated_makespan_is_flagged(self, tiny_executor):
        graph = tiny_executor.build_graph()
        honest = Simulator(graph).run()
        lied = SimulationResult(
            makespan=honest.makespan * 0.5,
            trace=honest.trace,
            memory=honest.memory,
        )
        report = check_simulation(graph, lied)
        assert any(
            v.invariant == "makespan-lower-bound" for v in report.violations
        )

    def test_honest_makespan_passes(self, tiny_executor):
        graph = tiny_executor.build_graph()
        result = Simulator(graph).run()
        assert check_simulation(graph, result).ok


class TestScheduleKindNone:
    def test_custom_schedule_skips_shape_checks(self, tiny, tiny_executor):
        prof, cluster, plan = tiny
        graph = tiny_executor.build_graph()
        result = Simulator(graph).run()
        report = check_execution(
            tiny_executor, graph, result, schedule_kind=None
        )
        assert report.ok, report.render()
        assert "warmup-count" not in report.checks
        assert "structure" in report.checks

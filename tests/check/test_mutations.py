"""Mutation testing: deliberately corrupted executions must be caught,
with violations naming the offending op/stage/invariant (ISSUE 5
acceptance: corrupted warm-up count, dropped dependency edge, tampered
memory column)."""

from repro.check import check_execution
from repro.sim.engine import Op, Simulator, TaskGraph


def _cap(executor) -> int:
    return min(executor.memory_model.max_in_flight())


def _clone_graph(graph, skip_edge=None, scale_mem_of=None, mem_factor=1.0):
    """Re-add all ops/edges, optionally dropping one edge or scaling one
    op's start-time memory delta."""
    g = TaskGraph()
    for op in graph.ops():
        clone = Op(
            op.name, op.duration, resources=op.resources,
            priority=op.priority, tags=op.tags,
        )
        if op.name == scale_mem_of:
            from repro.sim.engine import MemEffect

            clone.mem_effects = [
                MemEffect(e.device, e.delta * (1.0 if e.at_end else mem_factor),
                          at_end=e.at_end)
                for e in op.mem_effects
            ]
        else:
            clone.mem_effects = list(op.mem_effects)
        g.add(clone)
    for name in graph._order:
        for succ in graph._succ[name]:
            if (name, succ) == skip_edge:
                continue
            g.add_dep(name, succ)
    return g


def _check(executor, graph):
    result = Simulator(graph).run()
    return check_execution(
        executor, graph, result,
        schedule_kind="dapple", warmup_policy="PA", max_in_memory=_cap(executor),
    )


class TestCorruptedWarmup:
    def test_extra_warmup_forward_is_caught(self, tiny_executor):
        # Last stage runs F0 B0 F1 B1 ... (K=1).  Swapping B0 and F1 makes
        # the warm-up prefix 2 — still a valid, deadlock-free schedule
        # (warm-up depths stay non-increasing along the pipeline), but it
        # no longer matches the PA policy count.
        sched = tiny_executor.schedule[-1]
        assert (sched[1].kind, sched[2].kind) == ("B", "F")
        sched[1], sched[2] = sched[2], sched[1]
        report = _check(tiny_executor, tiny_executor.build_graph())
        assert not report.ok
        bad = [v for v in report.violations if v.invariant == "warmup-count"]
        assert bad and bad[0].stage == len(tiny_executor.schedule) - 1
        assert "Ki=1" in bad[0].message

    def test_trace_order_follows_the_mutation(self, tiny_executor):
        # The executed trace matches the (mutated) schedule, so only the
        # schedule-shape invariants fire — not trace-schedule-order.
        sched = tiny_executor.schedule[-1]
        sched[1], sched[2] = sched[2], sched[1]
        report = _check(tiny_executor, tiny_executor.build_graph())
        kinds = {v.invariant for v in report.violations}
        assert "warmup-count" in kinds
        assert "trace-schedule-order" not in kinds


class TestDroppedDependencyEdge:
    def test_missing_fb_edge_is_caught_and_named(self, tiny_executor):
        graph = tiny_executor.build_graph()
        mutated = _clone_graph(graph, skip_edge=("F/s0/m0/r0", "B/s0/m0/r0"))
        report = _check(tiny_executor, mutated)
        assert not report.ok
        bad = [v for v in report.violations if v.invariant == "structure"]
        assert bad
        assert bad[0].op == "B/s0/m0/r0"
        assert bad[0].stage == 0
        assert "F/s0/m0/r0" in bad[0].message

    def test_missing_transfer_edge_is_caught(self, tiny_executor):
        graph = tiny_executor.build_graph()
        mutated = _clone_graph(graph, skip_edge=("send/s0/m2", "F/s1/m2/r0"))
        report = _check(tiny_executor, mutated)
        bad = [v for v in report.violations if v.invariant == "structure"]
        assert any(v.op == "F/s1/m2/r0" for v in bad)


class TestTamperedMemoryColumn:
    def test_inflated_allocation_breaks_ki_bound(self, tiny_executor):
        graph = tiny_executor.build_graph()
        # Triple one forward's activation allocation but keep its release:
        # the device peak rises above the Ki-derived bound and the leak
        # shows up as a conservation failure too.
        mutated = _clone_graph(
            graph, scale_mem_of="F/s1/m0/r0", mem_factor=3.0
        )
        report = _check(tiny_executor, mutated)
        assert not report.ok
        kinds = {v.invariant for v in report.violations}
        assert "memory-bound" in kinds
        assert "memory-conservation" in kinds
        bound = [v for v in report.violations if v.invariant == "memory-bound"]
        dev = tiny_executor.plan.stages[1].devices[0].resource_key
        assert bound[0].resource == dev


class TestBrokenWeightSync:
    def test_missing_allreduce_is_caught(self, tiny_executor):
        graph = tiny_executor.build_graph()
        g = TaskGraph()
        for op in graph.ops():
            if op.name == "allreduce/s1":
                continue
            clone = Op(op.name, op.duration, resources=op.resources,
                       priority=op.priority, tags=op.tags)
            clone.mem_effects = list(op.mem_effects)
            g.add(clone)
        for name in graph._order:
            if name == "allreduce/s1":
                continue
            for succ in graph._succ[name]:
                if succ == "allreduce/s1":
                    continue
                g.add_dep(name, succ)
        report = _check(tiny_executor, g)
        assert not report.ok
        bad = [v for v in report.violations if v.invariant == "weight-sync"]
        assert any(v.stage == 1 for v in bad)

"""Differential oracles pass on healthy code and catch real divergence."""

from repro.check import (
    oracle_clean_faults,
    oracle_engines,
    oracle_explain,
    oracle_memory_m_independence,
    oracle_plan_cache,
    oracle_planner,
    oracle_served_plan,
    run_oracles,
)


class TestOraclesPass:
    def test_engine_equivalence(self, tiny_executor):
        report = oracle_engines(tiny_executor.build_graph())
        assert report.ok, report.render()

    def test_planner_fast_vs_scalar(self, tiny):
        prof, cluster, plan = tiny
        report = oracle_planner(prof, cluster, plan.global_batch_size)
        assert report.ok, report.render()

    def test_plan_cache_round_trip(self, tiny):
        prof, cluster, plan = tiny
        report = oracle_plan_cache(prof, cluster, plan.global_batch_size)
        assert report.ok, report.render()

    def test_served_plan_matches_direct(self, tiny):
        prof, cluster, plan = tiny
        report = oracle_served_plan(prof, cluster, plan.global_batch_size)
        assert report.ok, report.render()
        assert report.checks  # skipped-on-bind-failure still records the run

    def test_explain_decomposition(self, tiny):
        prof, cluster, plan = tiny
        assert oracle_explain(prof, cluster, plan).ok

    def test_clean_fault_path(self, tiny):
        prof, cluster, plan = tiny
        report = oracle_clean_faults(prof, cluster, plan)
        assert report.ok, report.render()

    def test_memory_m_independence(self, tiny):
        prof, cluster, plan = tiny
        report = oracle_memory_m_independence(prof, cluster, plan)
        assert report.ok, report.render()

    def test_run_all(self, tiny):
        prof, cluster, plan = tiny
        report = run_oracles(prof, cluster, plan, gbs=plan.global_batch_size)
        assert report.ok, report.render()
        assert len(report.checks) == 8
        assert "oracle-served-plan" in report.checks


class TestOraclesCatchDivergence:
    def test_engine_divergence_is_caught(self, tiny_executor):
        # Post-add duration mutation is the one asymmetry between engines:
        # the reference loop reads the live Op, the compiled loop reads the
        # column snapshot.  A graph mutated this way makes them disagree —
        # exactly what the oracle exists to detect.
        graph = tiny_executor.build_graph()
        graph.op("F/s0/m1/r0").duration *= 5
        report = oracle_engines(graph)
        assert not report.ok
        assert all(v.invariant == "oracle-engines" for v in report.violations)

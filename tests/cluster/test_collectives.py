"""Unit tests for collective cost models."""

import pytest

from repro.cluster import (
    allreduce_time,
    broadcast_time,
    config_a,
    config_b,
    hierarchical_allreduce_time,
    ring_allreduce_time,
)
from repro.cluster.configs import ETHERNET_25G, NVLINK
from repro.cluster.topology import LinkSpec


class TestRingAllReduce:
    def test_single_peer_free(self):
        assert ring_allreduce_time(1e9, 1, ETHERNET_25G) == 0.0

    def test_zero_bytes_free(self):
        assert ring_allreduce_time(0, 8, ETHERNET_25G) == 0.0

    def test_two_peer_volume(self):
        link = LinkSpec("t", bandwidth=1e9, latency=0.0)
        # 2*(n-1)/n = 1.0 of the payload for n=2.
        assert ring_allreduce_time(1e9, 2, link) == pytest.approx(1.0)

    def test_volume_grows_to_2x_asymptotically(self):
        link = LinkSpec("t", bandwidth=1e9, latency=0.0)
        t16 = ring_allreduce_time(1e9, 16, link)
        assert t16 == pytest.approx(2 * 15 / 16)

    def test_latency_hops(self):
        link = LinkSpec("t", bandwidth=float("inf"), latency=1e-3)
        assert ring_allreduce_time(1e6, 4, link) == pytest.approx(2 * 3 * 1e-3)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(1.0, 0, ETHERNET_25G)


class TestAllReduceSelection:
    def test_intra_machine_uses_nvlink(self):
        c = config_a(2)
        group = c.devices[:8]
        t = allreduce_time(2.8e9, c, group)
        # 2.8 GB over 8-way NVLink ring should be tens of ms, not seconds.
        assert t < 0.1
        assert t > 0.0

    def test_cross_machine_much_slower(self):
        c = config_a(2)
        intra = allreduce_time(2.8e9, c, c.devices[:8])
        cross = allreduce_time(2.8e9, c, [c.device(0), c.device(8)])
        assert cross > 10 * intra

    def test_flat_config_ring(self):
        c = config_b(16)
        t = allreduce_time(2.8e9, c, c.devices)
        expected = ring_allreduce_time(2.8e9, 16, c.inter)
        assert t == pytest.approx(expected)

    def test_hierarchical_beats_flat_on_config_a(self):
        c = config_a(2)
        flat = ring_allreduce_time(1e9, 16, c.inter)
        hier = hierarchical_allreduce_time(1e9, c, c.devices)
        assert hier < flat

    def test_single_device_free(self):
        c = config_b(2)
        assert allreduce_time(1e9, c, [c.device(0)]) == 0.0

    def test_monotone_in_bytes(self):
        c = config_a(2)
        sizes = [1e6, 1e7, 1e8, 1e9]
        times = [allreduce_time(s, c, c.devices) for s in sizes]
        assert times == sorted(times)


class TestBroadcast:
    def test_single_device_free(self):
        c = config_b(2)
        assert broadcast_time(1e9, c, [c.device(0)]) == 0.0

    def test_intra_vs_inter(self):
        c = config_a(2)
        t_intra = broadcast_time(1e8, c, c.devices[:4])
        t_inter = broadcast_time(1e8, c, [c.device(0), c.device(8)])
        assert t_intra < t_inter

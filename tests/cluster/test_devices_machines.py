"""Unit tests for device and machine primitives."""

import pytest

from repro.cluster.device import GB, TFLOPS, Device, GPUSpec, V100
from repro.cluster.machine import Machine


class TestGPUSpec:
    def test_v100_reference_values(self):
        assert V100.memory_bytes == 16 * GB
        assert V100.flops == 9.0 * TFLOPS

    def test_compute_time(self):
        spec = GPUSpec("t", 1, 1e12)
        assert spec.compute_time(2e12) == pytest.approx(2.0)
        assert spec.compute_time(0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            V100.compute_time(-1)

    def test_custom_spec_in_device(self):
        a100 = GPUSpec("A100", 40 * GB, 27 * TFLOPS)
        d = Device(global_id=0, machine_id=0, local_id=0, spec=a100)
        assert d.spec.memory_bytes == 40 * GB


class TestDevice:
    def test_resource_key(self):
        d = Device(global_id=7, machine_id=1, local_id=3)
        assert d.resource_key == "gpu:7"

    def test_repr_compact(self):
        assert repr(Device(global_id=5, machine_id=0, local_id=5)) == "G5"

    def test_frozen(self):
        d = Device(global_id=0, machine_id=0, local_id=0)
        with pytest.raises(AttributeError):
            d.global_id = 1


class TestMachine:
    def test_devices_created(self):
        m = Machine(machine_id=2, num_gpus=4, intra_bw=1e11, intra_lat=1e-6)
        assert len(m.devices) == 4
        assert all(d.machine_id == 2 for d in m.devices)
        assert [d.local_id for d in m.devices] == [0, 1, 2, 3]

    def test_assign_global_ids(self):
        m = Machine(machine_id=1, num_gpus=3, intra_bw=1e11, intra_lat=1e-6)
        nxt = m.assign_global_ids(10)
        assert nxt == 13
        assert [d.global_id for d in m.devices] == [10, 11, 12]

    def test_nic_keys_unique_per_machine(self):
        m0 = Machine(machine_id=0, num_gpus=1, intra_bw=1e11, intra_lat=0)
        m1 = Machine(machine_id=1, num_gpus=1, intra_bw=1e11, intra_lat=0)
        assert m0.nic_send_key != m1.nic_send_key
        assert m0.nic_send_key != m0.nic_recv_key

    def test_custom_gpu_spec_propagates(self):
        a100 = GPUSpec("A100", 40 * GB, 27 * TFLOPS)
        m = Machine(machine_id=0, num_gpus=2, intra_bw=1e11, intra_lat=0,
                    gpu_spec=a100)
        assert all(d.spec.name == "A100" for d in m.devices)


class TestHeterogeneousMemory:
    def test_memory_model_uses_smallest_device(self):
        """A stage mixing 16 GB and 40 GB replicas is bound by 16 GB."""
        from repro.cluster.topology import Cluster
        from repro.cluster.configs import ETHERNET_25G
        from repro.core import profile_model
        from repro.core.plan import ParallelPlan, Stage
        from repro.models import uniform_model
        from repro.runtime.memory import MemoryModel

        a100 = GPUSpec("A100", 40 * GB, 27 * TFLOPS)
        machines = [
            Machine(machine_id=0, num_gpus=1, intra_bw=1e11, intra_lat=0),
            Machine(machine_id=1, num_gpus=1, intra_bw=1e11, intra_lat=0,
                    gpu_spec=a100),
        ]
        cluster = Cluster(machines, inter=ETHERNET_25G)
        model = uniform_model("u", 4, 1e9, 1_000_000, 1e6, profile_batch=2)
        prof = profile_model(model)
        plan = ParallelPlan(
            model, [Stage(0, 4, tuple(cluster.devices))], 4, 1
        )
        sm = MemoryModel(prof, plan).stage_memory(0)
        assert sm.capacity_bytes == 16 * GB

"""Unit tests for cluster topology and hardware configs."""

import pytest

from repro.cluster import (
    Cluster,
    LinkSpec,
    Machine,
    config_a,
    config_b,
    config_c,
    config_by_name,
)
from repro.cluster.configs import ETHERNET_10G, ETHERNET_25G, NVLINK


class TestLinkSpec:
    def test_time_includes_latency(self):
        link = LinkSpec("t", bandwidth=1e9, latency=1e-3)
        assert link.time(1e9) == pytest.approx(1.0 + 1e-3)

    def test_zero_bytes_free(self):
        link = LinkSpec("t", bandwidth=1e9, latency=1e-3)
        assert link.time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("t", 1e9, 0.0).time(-1)


class TestConfigs:
    def test_config_a_shape(self):
        c = config_a(2)
        assert c.num_machines == 2
        assert c.gpus_per_machine == 8
        assert c.num_devices == 16
        assert c.inter.bandwidth == ETHERNET_25G.bandwidth

    def test_config_b_shape(self):
        c = config_b(16)
        assert c.num_machines == 16
        assert c.gpus_per_machine == 1
        assert c.inter.bandwidth == ETHERNET_25G.bandwidth

    def test_config_c_slower_than_b(self):
        assert config_c(2).inter.bandwidth < config_b(2).inter.bandwidth
        assert config_c(2).inter.bandwidth == ETHERNET_10G.bandwidth

    def test_config_by_name(self):
        assert config_by_name("A", 16).num_machines == 2
        assert config_by_name("b", 8).num_machines == 8
        assert config_by_name("C", 4).num_devices == 4
        with pytest.raises(ValueError):
            config_by_name("A", 12)
        with pytest.raises(ValueError):
            config_by_name("Z")

    def test_global_ids_consecutive(self):
        c = config_a(2)
        assert [d.global_id for d in c.devices] == list(range(16))
        assert c.device(9).machine_id == 1
        assert c.device(9).local_id == 1


class TestLinkSelection:
    def test_intra_machine_uses_nvlink(self):
        c = config_a(2)
        a, b = c.device(0), c.device(1)
        assert c.same_machine(a, b)
        assert c.link_between(a, b).bandwidth == NVLINK.bandwidth

    def test_inter_machine_uses_ethernet(self):
        c = config_a(2)
        a, b = c.device(0), c.device(8)
        assert not c.same_machine(a, b)
        assert c.link_between(a, b).bandwidth == ETHERNET_25G.bandwidth

    def test_loopback_free(self):
        c = config_a(1)
        d = c.device(0)
        assert c.p2p_time(1e9, d, d) == 0.0

    def test_p2p_faster_intra(self):
        c = config_a(2)
        t_intra = c.p2p_time(1e8, c.device(0), c.device(1))
        t_inter = c.p2p_time(1e8, c.device(0), c.device(8))
        assert t_intra < t_inter


class TestTransferResources:
    def test_intra_pair_lane(self):
        c = config_a(1)
        keys = c.transfer_resources(c.device(0), c.device(3))
        assert keys == ("nvlink:0-3",)
        # symmetric canonical key
        assert c.transfer_resources(c.device(3), c.device(0)) == ("nvlink:0-3",)

    def test_inter_nic_pair(self):
        c = config_a(2)
        keys = c.transfer_resources(c.device(0), c.device(8))
        assert keys == ("nic-out:0", "nic-in:1")

    def test_loopback_no_resources(self):
        c = config_b(2)
        assert c.transfer_resources(c.device(0), c.device(0)) == ()


class TestGroups:
    def test_spans_machines(self):
        c = config_a(2)
        assert not c.spans_machines([c.device(0), c.device(7)])
        assert c.spans_machines([c.device(0), c.device(8)])

    def test_group_min_bandwidth(self):
        c = config_a(2)
        assert c.group_min_bandwidth([c.device(0), c.device(1)]) == NVLINK.bandwidth
        assert c.group_min_bandwidth([c.device(0), c.device(8)]) == ETHERNET_25G.bandwidth
        assert c.group_min_bandwidth([c.device(0)]) == float("inf")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([], inter=ETHERNET_25G)

    def test_machine_needs_gpus(self):
        with pytest.raises(ValueError):
            Machine(machine_id=0, num_gpus=0, intra_bw=1e9, intra_lat=0.0)

"""Unit tests for point-to-point transfer and split/concat cost models."""

import pytest

from repro.cluster import config_a, config_b, split_concat_overhead, transfer_time
from repro.cluster.transfer import COPY_LAUNCH_OVERHEAD


class TestSplitConcat:
    def test_no_fan_is_free(self):
        assert split_concat_overhead(1e6, 1) == 0.0
        assert split_concat_overhead(1e6, 0) == 0.0

    def test_zero_bytes_free(self):
        assert split_concat_overhead(0, 4) == 0.0

    def test_scales_with_bytes(self):
        small = split_concat_overhead(1e6, 2)
        large = split_concat_overhead(1e9, 2)
        assert large > small > COPY_LAUNCH_OVERHEAD


class TestTransferTime:
    def test_same_group_free(self):
        c = config_a(2)
        g = [c.device(0), c.device(1)]
        assert transfer_time(c, 1e6, g, g) == 0.0

    def test_zero_bytes_free(self):
        c = config_b(2)
        assert transfer_time(c, 0, [c.device(0)], [c.device(1)]) == 0.0

    def test_one_to_one_matches_p2p_plus_latency(self):
        c = config_b(2)
        a, b = c.device(0), c.device(1)
        t = transfer_time(c, 8.8e6, [a], [b])
        assert t == pytest.approx(c.p2p_time(8.8e6, a, b), rel=1e-9)

    def test_one_to_many_splits_volume(self):
        # 1 sender fanning to 2 receivers: sender still pushes all bytes, so
        # the time is dominated by the sender's full volume.
        c = config_b(3)
        t_1to1 = transfer_time(c, 1e8, [c.device(0)], [c.device(1)])
        t_1to2 = transfer_time(c, 1e8, [c.device(0)], [c.device(1), c.device(2)])
        assert t_1to2 >= t_1to1 * 0.99  # same bottleneck + split overhead

    def test_many_to_one_bottleneck_is_receiver(self):
        c = config_b(3)
        t = transfer_time(c, 1e8, [c.device(0), c.device(1)], [c.device(2)])
        # Receiver must drain the full 1e8 over its inbound Ethernet.
        assert t >= 1e8 / c.inter.bandwidth

    def test_many_to_many_parallelizes(self):
        c = config_b(4)
        t_11 = transfer_time(c, 1e8, [c.device(0)], [c.device(1)])
        t_22 = transfer_time(
            c, 1e8, [c.device(0), c.device(1)], [c.device(2), c.device(3)]
        )
        # 2 senders / 2 receivers each carry half the volume.
        assert t_22 < t_11
        assert t_22 > t_11 / 4

    def test_intra_machine_much_faster(self):
        c = config_a(2)
        t_intra = transfer_time(c, 1e8, [c.device(0)], [c.device(1)])
        t_inter = transfer_time(c, 1e8, [c.device(0)], [c.device(8)])
        assert t_intra * 10 < t_inter

    def test_empty_groups_rejected(self):
        c = config_b(2)
        with pytest.raises(ValueError):
            transfer_time(c, 1e6, [], [c.device(0)])

"""The vectorized two-stage scan must agree with evaluate_plan exactly."""

import numpy as np
import pytest

from repro.cluster import config_a, config_b, config_c
from repro.core import profile_model
from repro.core.fast_scan import best_two_stage_split, scan_two_stage
from repro.core.latency import evaluate_plan
from repro.core.plan import ParallelPlan, Stage
from repro.models import bert48, gnmt16, uniform_model, vgg19


def reference_latencies(prof, cluster, gbs, g0, g1, m):
    out = []
    n = prof.num_layers
    for j in range(1, n):
        plan = ParallelPlan(
            prof.graph,
            [Stage(0, j, tuple(g0)), Stage(j, n, tuple(g1))],
            gbs,
            m,
        )
        out.append(evaluate_plan(prof, cluster, plan).latency)
    return np.array(out)


CASES = [
    # (model builder, cluster builder, gbs, group split, M)
    (gnmt16, lambda: config_a(2), 1024, 8, 16),
    (gnmt16, lambda: config_c(16), 1024, 10, 16),
    (bert48, lambda: config_a(2), 64, 8, 32),
    (bert48, lambda: config_b(16), 64, 4, 32),
    (vgg19, lambda: config_c(16), 2048, 15, 64),
    (lambda: uniform_model("u", 12, 9e9, 5_000_000, 2e6, profile_batch=2),
     lambda: config_b(4), 32, 1, 16),
]


class TestAgreement:
    @pytest.mark.parametrize("model_fn,cluster_fn,gbs,split,m", CASES)
    def test_matches_evaluate_plan(self, model_fn, cluster_fn, gbs, split, m):
        prof = profile_model(model_fn())
        cluster = cluster_fn()
        g0 = cluster.devices[:split]
        g1 = cluster.devices[split:]
        fast = scan_two_stage(prof, cluster, gbs, g0, g1, m)
        ref = reference_latencies(prof, cluster, gbs, g0, g1, m)
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-12)

    def test_best_split_matches_argmin(self):
        prof = profile_model(gnmt16())
        cluster = config_a(2)
        g0, g1 = cluster.devices[:8], cluster.devices[8:]
        j, lat = best_two_stage_split(prof, cluster, 1024, g0, g1, 16)
        ref = reference_latencies(prof, cluster, 1024, g0, g1, 16)
        assert j == int(np.argmin(ref)) + 1
        assert lat == pytest.approx(ref.min())


class TestSpeed:
    def test_vectorized_scan_is_fast(self):
        import time

        prof = profile_model(bert48())
        cluster = config_a(2)
        g0, g1 = cluster.devices[:8], cluster.devices[8:]
        t0 = time.perf_counter()
        for _ in range(20):
            scan_two_stage(prof, cluster, 64, g0, g1, 32)
        fast = (time.perf_counter() - t0) / 20
        t0 = time.perf_counter()
        reference_latencies(prof, cluster, 64, g0, g1, 32)
        slow = time.perf_counter() - t0
        assert fast < slow  # vectorization pays for itself

"""Unit tests for the analytical latency model (paper eq. 1-3)."""

import pytest

from repro.cluster import config_a, config_b
from repro.core import profile_model
from repro.core.latency import (
    StageCosts,
    compute_acr,
    evaluate_plan,
    find_pivot,
    stage_costs,
)
from repro.core.plan import ParallelPlan, Stage, single_stage_plan
from repro.models import uniform_model


@pytest.fixture
def model():
    # 8 uniform layers, 9e9 FLOPs each -> 1 ms fwd/sample on a V100.
    return uniform_model("u", 8, 9e9, 25_000_000, 1e6, profile_batch=4)


@pytest.fixture
def cluster():
    return config_b(4)


def make_plan(model, cluster, bounds, groups, gbs=16, m=4):
    stages = [
        Stage(bounds[i], bounds[i + 1], tuple(cluster.device(g) for g in groups[i]))
        for i in range(len(groups))
    ]
    return ParallelPlan(model, stages, gbs, m)


class TestFindPivot:
    def _costs(self, fb_pairs):
        return StageCosts(
            fwd=[f for f, _ in fb_pairs],
            bwd=[b for _, b in fb_pairs],
            allreduce=[0.0] * len(fb_pairs),
            is_comm=[False] * len(fb_pairs),
            comp_index=list(range(len(fb_pairs))),
        )

    def test_uniform_stages_pivot_last(self):
        costs = self._costs([(1.0, 2.0)] * 4)
        assert find_pivot(costs, 8) == 3

    def test_dominant_early_stage_becomes_pivot(self):
        costs = self._costs([(10.0, 20.0), (1.0, 2.0), (1.0, 2.0)])
        assert find_pivot(costs, 8) == 0

    def test_single_micro_batch_keeps_last(self):
        costs = self._costs([(10.0, 20.0), (1.0, 2.0)])
        # M=1: steady phases are all zero, pivot stays at the last stage.
        assert find_pivot(costs, 1) == 1


class TestSingleStage:
    def test_dp_latency_components(self, model, cluster):
        plan = single_stage_plan(model, cluster.devices, 16, 4)
        est = evaluate_plan(model_profile(model), cluster, plan, dp_overlap=False)
        costs = est.costs
        # L = M*(F+B) + AR for a single stage.
        expected = 4 * (costs.fwd[0] + costs.bwd[0]) + costs.allreduce[0]
        assert est.latency == pytest.approx(expected)

    def test_dp_overlap_reduces_latency(self, model, cluster):
        plan = single_stage_plan(model, cluster.devices, 16, 4)
        prof = model_profile(model)
        no = evaluate_plan(prof, cluster, plan, dp_overlap=False)
        yes = evaluate_plan(prof, cluster, plan, dp_overlap=True)
        assert yes.latency <= no.latency

    def test_single_device_no_allreduce(self, model, cluster):
        plan = single_stage_plan(model, [cluster.device(0)], 16, 4)
        est = evaluate_plan(model_profile(model), cluster, plan)
        assert est.costs.allreduce[0] == 0.0


def model_profile(model):
    return profile_model(model)


class TestStageCosts:
    def test_comm_stages_interleaved(self, model, cluster):
        plan = make_plan(model, cluster, [0, 4, 8], [(0, 1), (2, 3)])
        costs = stage_costs(model_profile(model), cluster, plan)
        assert costs.is_comm == [False, True, False]
        assert costs.comp_index == [0, None, 1]
        assert costs.allreduce[1] == 0.0

    def test_replication_splits_compute(self, model, cluster):
        p1 = make_plan(model, cluster, [0, 4, 8], [(0,), (1,)])
        p2 = make_plan(model, cluster, [0, 4, 8], [(0, 1), (2,)])
        prof = model_profile(model)
        c1 = stage_costs(prof, cluster, p1)
        c2 = stage_costs(prof, cluster, p2)
        assert c2.fwd[0] < c1.fwd[0]  # 2-way replica halves the slice

    def test_allreduce_only_on_replicated(self, model, cluster):
        plan = make_plan(model, cluster, [0, 4, 8], [(0, 1), (2,)])
        costs = stage_costs(model_profile(model), cluster, plan)
        assert costs.allreduce[0] > 0.0
        assert costs.allreduce[2] == 0.0


class TestLatency:
    def test_more_micro_batches_better_amortization(self, model, cluster):
        prof = model_profile(model)
        # Same GBS split into more micro-batches -> lower latency (better
        # pipelining) until overheads dominate.
        p2 = make_plan(model, cluster, [0, 4, 8], [(0, 1), (2, 3)], gbs=32, m=2)
        p8 = make_plan(model, cluster, [0, 4, 8], [(0, 1), (2, 3)], gbs=32, m=8)
        l2 = evaluate_plan(prof, cluster, p2).latency
        l8 = evaluate_plan(prof, cluster, p8).latency
        assert l8 < l2

    def test_latency_positive_and_finite(self, model, cluster):
        prof = model_profile(model)
        plan = make_plan(model, cluster, [0, 3, 8], [(0,), (1, 2, 3)])
        est = evaluate_plan(prof, cluster, plan)
        assert 0 < est.latency < float("inf")
        assert est.latency == pytest.approx(est.warmup + est.steady + est.ending)

    def test_uneven_beats_even_when_comm_matters(self):
        # Paper Fig. 7: with a 2-device pipeline and a heavy boundary in the
        # middle, a slightly uneven split can beat the even one.
        layers = uniform_model("u", 4, 9e9, 1000, 5e8, profile_batch=1)
        c = config_b(2)
        prof = profile_model(layers)
        lat = {}
        for split in (1, 2, 3):
            plan = make_plan(layers, c, [0, split, 4], [(0,), (1,)], gbs=8, m=8)
            lat[split] = evaluate_plan(prof, c, plan).latency
        # With a heavy boundary the 1:3 split edges out the even 2:2 —
        # the paper's Fig. 7 observation.  Guard that the model keeps the
        # candidates within a sane band and never rewards the worst skew.
        assert lat[1] <= lat[2] <= lat[3]
        assert lat[3] / lat[1] < 1.2


class TestACR:
    def test_single_stage_zero(self, model, cluster):
        plan = single_stage_plan(model, cluster.devices, 16, 4)
        assert compute_acr(model_profile(model), cluster, plan) == 0.0

    def test_bigger_activations_bigger_acr(self, cluster):
        small = uniform_model("s", 4, 9e9, 1000, 1e5, profile_batch=2)
        big = uniform_model("b", 4, 9e9, 1000, 1e8, profile_batch=2)
        acr_s = compute_acr(
            profile_model(small), cluster, make_plan(small, cluster, [0, 2, 4], [(0,), (1,)])
        )
        acr_b = compute_acr(
            profile_model(big), cluster, make_plan(big, cluster, [0, 2, 4], [(0,), (1,)])
        )
        assert acr_b > acr_s


class TestAgainstPaperEfficiencyFormula:
    def test_pipeline_efficiency_matches_closed_form(self):
        """Paper §II-A: efficiency = 1 / (1 + (1+α)(S−1)/M) for uniform stages.

        With negligible comm (α≈0) and S uniform stages on S devices, our
        latency model should reproduce the closed-form bubble overhead.
        """
        s, m = 4, 16
        layers = uniform_model("u", s, 9e9, 1000, 1.0, profile_batch=1)
        c = config_b(s)
        prof = profile_model(layers)
        bounds = list(range(s + 1))
        plan = make_plan(layers, c, bounds, [(i,) for i in range(s)], gbs=m, m=m)
        est = evaluate_plan(prof, c, plan)
        per_mb = prof.fwd_time(0, s, 1.0) + prof.bwd_time(0, s, 1.0)
        ideal = m * per_mb / s
        efficiency = ideal / est.latency
        expected = 1.0 / (1.0 + (s - 1) / m)
        assert efficiency == pytest.approx(expected, rel=0.06)

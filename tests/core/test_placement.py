"""Unit tests for the three device-assignment policies (paper Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import config_a, config_b
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec
from repro.core.placement import (
    allocate,
    append_first,
    fresh_first,
    scatter_first,
)


@pytest.fixture
def hier():
    """3 machines × 8 GPUs, like the paper's Fig. 5 example."""
    return config_a(3)


class TestFreshFirst:
    def test_prefers_unused_machine(self, hier):
        # Machine 0 partially used; fresh-first should go to machine 1.
        alloc = fresh_first(hier, (4, 0, 0), 6)
        assert alloc == (0, 6, 0)

    def test_spills_to_second_fresh_machine(self, hier):
        alloc = fresh_first(hier, (4, 0, 0), 10)
        assert alloc == (0, 8, 2)

    def test_falls_back_to_partial(self, hier):
        alloc = fresh_first(hier, (4, 8, 8), 4)
        assert alloc == (4, 0, 0)

    def test_insufficient_returns_none(self, hier):
        assert fresh_first(hier, (8, 8, 8), 1) is None
        assert fresh_first(hier, (0, 0, 0), 25) is None


class TestAppendFirst:
    def test_prefers_partially_used(self, hier):
        alloc = append_first(hier, (4, 0, 0), 4)
        assert alloc == (4, 0, 0)

    def test_overflows_to_fresh(self, hier):
        alloc = append_first(hier, (4, 0, 0), 6)
        assert alloc == (4, 2, 0)

    def test_all_fresh_behaves_like_fill(self, hier):
        alloc = append_first(hier, (0, 0, 0), 6)
        assert alloc == (6, 0, 0)


class TestScatterFirst:
    def test_spreads_evenly(self, hier):
        alloc = scatter_first(hier, (0, 0, 0), 6)
        assert alloc == (2, 2, 2)

    def test_uneven_remainder(self, hier):
        alloc = scatter_first(hier, (0, 0, 0), 5)
        assert alloc == (2, 2, 1)

    def test_respects_capacity(self, hier):
        alloc = scatter_first(hier, (7, 0, 0), 6)
        assert alloc == (1, 3, 2)

    def test_insufficient_returns_none(self, hier):
        assert scatter_first(hier, (8, 8, 7), 2) is None


def _scatter_round_robin(cluster, used, want):
    """Reference implementation: the original one-GPU-per-round loop."""
    free = [m.num_gpus - u for m, u in zip(cluster.machines, used)]
    alloc = [0] * len(free)
    remaining = want
    while remaining > 0:
        progressed = False
        for i in range(len(free)):
            if remaining == 0:
                break
            if free[i] - alloc[i] > 0:
                alloc[i] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            return None
    return tuple(alloc)


class TestScatterClosedForm:
    """Closed-form scatter_first must match the round-robin loop exactly."""

    @staticmethod
    def _cluster(capacities):
        link = LinkSpec("eth", 25e9 / 8, 5e-6)
        machines = [
            Machine(machine_id=i, num_gpus=c, intra_bw=1.2e11, intra_lat=1e-6)
            for i, c in enumerate(capacities)
        ]
        return Cluster(machines, link, name="prop")

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_matches_round_robin(self, data):
        capacities = data.draw(
            st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6)
        )
        used = tuple(
            data.draw(st.integers(min_value=0, max_value=c), label=f"used[{i}]")
            for i, c in enumerate(capacities)
        )
        total_free = sum(c - u for c, u in zip(capacities, used))
        # Include infeasible wants (up to total_free + 2) to cover the None path.
        want = data.draw(st.integers(min_value=1, max_value=max(total_free, 1) + 2))
        cluster = self._cluster(capacities)
        assert scatter_first(cluster, used, want) == _scatter_round_robin(
            cluster, used, want
        )


class TestAllocate:
    def test_dedupes_identical_allocations(self):
        # Flat cluster: every machine has one GPU, all policies coincide.
        c = config_b(4)
        groups = allocate(c, (0, 0, 0, 0), 2)
        assert len(groups) == 1

    def test_distinct_policies_on_hierarchy(self, hier):
        groups = allocate(hier, (4, 0, 0), 6)
        allocations = {g.new_used for g in groups}
        assert (4, 6, 0) in allocations  # fresh
        assert (8, 2, 0) in allocations  # append
        # scatter: 2 from m0 (4 free), 2 from m1, 2 from m2
        assert (6, 2, 2) in allocations

    def test_devices_materialized_consistently(self, hier):
        groups = allocate(hier, (2, 0, 0), 3, policies=("append_first",))
        (g,) = groups
        assert [d.global_id for d in g.devices] == [2, 3, 4]
        assert g.new_used == (5, 0, 0)

    def test_zero_want_rejected(self, hier):
        with pytest.raises(ValueError):
            allocate(hier, (0, 0, 0), 0)

    def test_over_capacity_empty(self, hier):
        assert allocate(hier, (8, 8, 8), 1) == []

    def test_policy_tag_recorded(self, hier):
        groups = allocate(hier, (0, 0, 0), 4)
        assert all(g.policy in {"fresh_first", "append_first", "scatter_first"} for g in groups)

"""Unit tests for plan data structures."""

import pytest

from repro.cluster import config_a, config_b
from repro.core.plan import ParallelPlan, PlanKind, Stage, single_stage_plan
from repro.models import uniform_model


@pytest.fixture
def model():
    return uniform_model("u", 10, 1e9, 100, 1e4, profile_batch=4)


@pytest.fixture
def cluster():
    return config_a(2)


def two_stage(model, cluster, split=5, m=4):
    d = cluster.devices
    return ParallelPlan(
        model=model,
        stages=[Stage(0, split, tuple(d[:8])), Stage(split, 10, tuple(d[8:]))],
        global_batch_size=64,
        num_micro_batches=m,
    )


class TestStage:
    def test_empty_range_rejected(self, cluster):
        with pytest.raises(ValueError):
            Stage(3, 3, (cluster.device(0),))

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            Stage(0, 1, ())

    def test_replicas(self, cluster):
        s = Stage(0, 2, tuple(cluster.devices[:3]))
        assert s.replicas == 3
        assert s.num_layers == 2


class TestPlanValidation:
    def test_valid_plan(self, model, cluster):
        two_stage(model, cluster)  # no raise

    def test_gap_rejected(self, model, cluster):
        d = cluster.devices
        with pytest.raises(ValueError, match="contiguous"):
            ParallelPlan(model, [Stage(0, 4, (d[0],)), Stage(5, 10, (d[1],))], 8, 2)

    def test_incomplete_coverage_rejected(self, model, cluster):
        d = cluster.devices
        with pytest.raises(ValueError):
            ParallelPlan(model, [Stage(0, 4, (d[0],))], 8, 2)

    def test_device_reuse_rejected(self, model, cluster):
        d = cluster.devices
        with pytest.raises(ValueError, match="two stages"):
            ParallelPlan(model, [Stage(0, 5, (d[0],)), Stage(5, 10, (d[0],))], 8, 2)

    def test_indivisible_gbs_rejected(self, model, cluster):
        d = cluster.devices
        with pytest.raises(ValueError, match="divisible"):
            ParallelPlan(model, [Stage(0, 10, (d[0],))], 10, 3)


class TestPlanProperties:
    def test_kind_dp(self, model, cluster):
        p = single_stage_plan(model, cluster.devices, 64, 4)
        assert p.kind is PlanKind.DATA_PARALLEL
        assert p.notation == "DP"

    def test_kind_straight(self, model, cluster):
        d = cluster.devices
        stages = [Stage(i, i + 1, (d[i],)) for i in range(10)]
        p = ParallelPlan(model, stages, 64, 4)
        assert p.kind is PlanKind.STRAIGHT
        assert p.notation == "straight"

    def test_kind_pipeline_notation(self, model, cluster):
        p = two_stage(model, cluster)
        assert p.kind is PlanKind.PIPELINE
        assert p.notation == "8:8"
        assert p.split_notation == "5:5"
        assert p.split_positions == [5]

    def test_micro_batch_size(self, model, cluster):
        p = two_stage(model, cluster, m=4)
        assert p.micro_batch_size == 16.0
        assert p.device_batch(0) == 2.0

    def test_num_devices(self, model, cluster):
        assert two_stage(model, cluster).num_devices == 16

    def test_uneven_replication(self, model):
        c = config_b(4)
        d = c.devices
        p = ParallelPlan(
            model, [Stage(0, 7, tuple(d[:3])), Stage(7, 10, (d[3],))], 12, 3
        )
        assert p.notation == "3:1"
        assert p.device_batch(0) == pytest.approx(4 / 3)
        assert p.device_batch(1) == pytest.approx(4.0)

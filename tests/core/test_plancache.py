"""Content-addressed plan cache: fingerprint sensitivity and hit fidelity.

The cache's safety argument is the fingerprint: *any* field that the search
result depends on must change the key (else a stale plan is served), and
equal problems must collide onto one key across processes (else the cache
never hits).  Hit fidelity is the other half: a round-tripped entry must be
bit-identical to a fresh search.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.obs as obs
from repro.cluster import config_a
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plancache import (
    PlanCache,
    configure_default,
    default_cache,
    fingerprint,
    set_default_cache,
)
from repro.core.planner import plan_best
from repro.core.profiler import ModelProfile
from repro.models import uniform_model

SRC = Path(__file__).resolve().parents[2] / "src"


def _problem():
    graph = uniform_model("pc-test", 6, 2e9, 500_000, 2e6, profile_batch=4)
    prof = profile_model(graph)
    clu = config_a(4)
    return prof, clu, 64, PlannerConfig()


def _replace_layer(prof, idx, **changes):
    layers = list(prof.layers)
    layers[idx] = dataclasses.replace(layers[idx], **changes)
    return ModelProfile(graph=prof.graph, gpu=prof.gpu, layers=layers)


class TestFingerprintSensitivity:
    def test_stable_for_equal_inputs(self):
        prof, clu, gbs, cfg = _problem()
        assert fingerprint(prof, clu, gbs, cfg) == fingerprint(prof, clu, gbs, cfg)
        # A structurally equal but distinct problem object hits the same key.
        prof2, clu2, _, cfg2 = _problem()
        assert fingerprint(prof, clu, gbs, cfg) == fingerprint(prof2, clu2, gbs, cfg2)

    def test_gbs_changes_key(self):
        prof, clu, gbs, cfg = _problem()
        assert fingerprint(prof, clu, gbs, cfg) != fingerprint(prof, clu, gbs * 2, cfg)

    def test_every_config_field_changes_key(self):
        """Perturbing any PlannerConfig field yields a different digest."""
        prof, clu, gbs, cfg = _problem()
        base = fingerprint(prof, clu, gbs, cfg)
        perturb = {
            bool: lambda v: not v,
            int: lambda v: (v or 0) + 1,
            float: lambda v: (v or 0.0) + 0.5,
        }
        for f in dataclasses.fields(cfg):
            v = getattr(cfg, f.name)
            if isinstance(v, tuple):
                changed = v[:-1] if len(v) > 1 else v + v
            elif v is None:
                changed = 7
            else:
                changed = perturb[type(v)](v)
            other = dataclasses.replace(cfg, **{f.name: changed})
            assert fingerprint(prof, clu, gbs, other) != base, f.name

    def test_layer_stats_change_key(self):
        prof, clu, gbs, cfg = _problem()
        base = fingerprint(prof, clu, gbs, cfg)
        for field in ("fwd_time", "bwd_time", "param_bytes",
                      "activation_out_bytes", "stored_bytes"):
            bumped = _replace_layer(
                prof, 2, **{field: getattr(prof.layers[2], field) * 1.001 + 1}
            )
            assert fingerprint(bumped, clu, gbs, cfg) != base, field

    def test_cluster_topology_changes_key(self):
        prof, clu, gbs, cfg = _problem()
        base = fingerprint(prof, clu, gbs, cfg)
        slower_inter = Cluster(
            machines=list(clu.machines),
            inter=LinkSpec(clu.inter.name, clu.inter.bandwidth / 2, clu.inter.latency),
            name=clu.name,
        )
        assert fingerprint(prof, slower_inter, gbs, cfg) != base
        m0 = clu.machines[0]
        slower_intra = Cluster(
            machines=[
                Machine(
                    machine_id=m0.machine_id, num_gpus=m0.num_gpus,
                    intra_bw=m0.intra_bw / 2, intra_lat=m0.intra_lat,
                    gpu_spec=m0.gpu_spec,
                )
            ] + list(clu.machines[1:]),
            inter=clu.inter,
            name=clu.name,
        )
        assert fingerprint(prof, slower_intra, gbs, cfg) != base

    def test_stable_across_processes(self):
        """The digest is canonical bytes, never id()/hash() — a fresh
        interpreter computes the same key."""
        prof, clu, gbs, cfg = _problem()
        here = fingerprint(prof, clu, gbs, cfg)
        code = (
            "from repro.core.plancache import fingerprint\n"
            "from repro.core import PlannerConfig, profile_model\n"
            "from repro.cluster import config_a\n"
            "from repro.models import uniform_model\n"
            "g = uniform_model('pc-test', 6, 2e9, 500_000, 2e6, profile_batch=4)\n"
            "print(fingerprint(profile_model(g), config_a(4), 64, PlannerConfig()))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == here


def _signature(result):
    return (
        result.plan.notation,
        result.plan.split_notation,
        result.plan.num_micro_batches,
        result.estimate.latency,
        result.states_explored,
        result.plans_evaluated,
        result.infeasible_plans,
        tuple((lat, p.notation) for lat, p in result.top_plans),
    )


class TestPlanCache:
    def test_memory_and_disk_hits_are_bit_identical(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        fresh = Planner(prof, clu, gbs, cfg).search()
        cache = PlanCache(tmp_path)

        miss = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert _signature(miss) == _signature(fresh)

        mem_hit = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert _signature(mem_hit) == _signature(fresh)

        cache.clear_memory()
        disk_hit = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert (cache.hits, cache.misses) == (2, 1)
        assert _signature(disk_hit) == _signature(fresh)

    def test_memory_only_cache(self):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache()
        plan_best(prof, clu, gbs, cfg, cache=cache)
        hit = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert cache.hits == 1 and len(cache) == 1
        assert hit.plan.notation

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        (tmp_path / f"{digest}.json").write_text("{not json")
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None
        assert cache.misses == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        path = tmp_path / f"{digest}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = "plan-cache-v0"
        path.write_text(json.dumps(payload))
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None

    def test_obs_counters_track_hits_and_misses(self):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache()
        obs.enable(reset_state=True)
        try:
            plan_best(prof, clu, gbs, cfg, cache=cache)
            plan_best(prof, clu, gbs, cfg, cache=cache)
            plan_best(prof, clu, gbs * 2, cfg, cache=cache)
            assert obs.counter("planner.cache.hit").value == 1
            assert obs.counter("planner.cache.miss").value == 2
        finally:
            obs.disable()
            obs.reset()

    def test_cached_sweep_hit_rate(self):
        """A fig12-style GBS sweep re-plans each grid point once: with a
        shared cache the second pass is all hits."""
        prof, clu, _, cfg = _problem()
        cache = PlanCache()
        points = [16, 32, 64]
        obs.enable(reset_state=True)
        try:
            for _ in range(2):
                for gbs in points:
                    plan_best(prof, clu, gbs, cfg, cache=cache)
            assert obs.counter("planner.cache.hit").value == len(points)
            assert obs.counter("planner.cache.miss").value == len(points)
        finally:
            obs.disable()
            obs.reset()
        assert cache.hits == len(points)


class TestDefaultCache:
    def teardown_method(self):
        configure_default(enabled=True)
        set_default_cache(None)
        configure_default(enabled=True)

    def test_default_is_lazy_memory_only(self):
        configure_default(enabled=True)
        c = default_cache()
        assert c is not None and c.directory is None
        assert default_cache() is c

    def test_disable(self):
        configure_default(enabled=False)
        assert default_cache() is None

    def test_directory(self, tmp_path):
        c = configure_default(directory=tmp_path)
        assert default_cache() is c
        assert c.directory == tmp_path

"""Content-addressed plan cache: fingerprint sensitivity and hit fidelity.

The cache's safety argument is the fingerprint: *any* field that the search
result depends on must change the key (else a stale plan is served), and
equal problems must collide onto one key across processes (else the cache
never hits).  Hit fidelity is the other half: a round-tripped entry must be
bit-identical to a fresh search.
"""

import dataclasses
import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.obs as obs
from repro.cluster import config_a
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster, LinkSpec
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plancache import (
    PlanCache,
    configure_default,
    default_cache,
    fingerprint,
    set_default_cache,
    swap_default,
)
from repro.core.planner import plan_best
from repro.core.profiler import ModelProfile
from repro.models import uniform_model

SRC = Path(__file__).resolve().parents[2] / "src"


def _problem():
    graph = uniform_model("pc-test", 6, 2e9, 500_000, 2e6, profile_batch=4)
    prof = profile_model(graph)
    clu = config_a(4)
    return prof, clu, 64, PlannerConfig()


def _replace_layer(prof, idx, **changes):
    layers = list(prof.layers)
    layers[idx] = dataclasses.replace(layers[idx], **changes)
    return ModelProfile(graph=prof.graph, gpu=prof.gpu, layers=layers)


class TestFingerprintSensitivity:
    def test_stable_for_equal_inputs(self):
        prof, clu, gbs, cfg = _problem()
        assert fingerprint(prof, clu, gbs, cfg) == fingerprint(prof, clu, gbs, cfg)
        # A structurally equal but distinct problem object hits the same key.
        prof2, clu2, _, cfg2 = _problem()
        assert fingerprint(prof, clu, gbs, cfg) == fingerprint(prof2, clu2, gbs, cfg2)

    def test_gbs_changes_key(self):
        prof, clu, gbs, cfg = _problem()
        assert fingerprint(prof, clu, gbs, cfg) != fingerprint(prof, clu, gbs * 2, cfg)

    def test_every_config_field_changes_key(self):
        """Perturbing any PlannerConfig field yields a different digest."""
        prof, clu, gbs, cfg = _problem()
        base = fingerprint(prof, clu, gbs, cfg)
        perturb = {
            bool: lambda v: not v,
            int: lambda v: (v or 0) + 1,
            float: lambda v: (v or 0.0) + 0.5,
        }
        for f in dataclasses.fields(cfg):
            v = getattr(cfg, f.name)
            if isinstance(v, tuple):
                changed = v[:-1] if len(v) > 1 else v + v
            elif v is None:
                changed = 7
            else:
                changed = perturb[type(v)](v)
            other = dataclasses.replace(cfg, **{f.name: changed})
            assert fingerprint(prof, clu, gbs, other) != base, f.name

    def test_layer_stats_change_key(self):
        prof, clu, gbs, cfg = _problem()
        base = fingerprint(prof, clu, gbs, cfg)
        for field in ("fwd_time", "bwd_time", "param_bytes",
                      "activation_out_bytes", "stored_bytes"):
            bumped = _replace_layer(
                prof, 2, **{field: getattr(prof.layers[2], field) * 1.001 + 1}
            )
            assert fingerprint(bumped, clu, gbs, cfg) != base, field

    def test_cluster_topology_changes_key(self):
        prof, clu, gbs, cfg = _problem()
        base = fingerprint(prof, clu, gbs, cfg)
        slower_inter = Cluster(
            machines=list(clu.machines),
            inter=LinkSpec(clu.inter.name, clu.inter.bandwidth / 2, clu.inter.latency),
            name=clu.name,
        )
        assert fingerprint(prof, slower_inter, gbs, cfg) != base
        m0 = clu.machines[0]
        slower_intra = Cluster(
            machines=[
                Machine(
                    machine_id=m0.machine_id, num_gpus=m0.num_gpus,
                    intra_bw=m0.intra_bw / 2, intra_lat=m0.intra_lat,
                    gpu_spec=m0.gpu_spec,
                )
            ] + list(clu.machines[1:]),
            inter=clu.inter,
            name=clu.name,
        )
        assert fingerprint(prof, slower_intra, gbs, cfg) != base

    def test_stable_across_processes(self):
        """The digest is canonical bytes, never id()/hash() — a fresh
        interpreter computes the same key."""
        prof, clu, gbs, cfg = _problem()
        here = fingerprint(prof, clu, gbs, cfg)
        code = (
            "from repro.core.plancache import fingerprint\n"
            "from repro.core import PlannerConfig, profile_model\n"
            "from repro.cluster import config_a\n"
            "from repro.models import uniform_model\n"
            "g = uniform_model('pc-test', 6, 2e9, 500_000, 2e6, profile_batch=4)\n"
            "print(fingerprint(profile_model(g), config_a(4), 64, PlannerConfig()))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == here


def _signature(result):
    return (
        result.plan.notation,
        result.plan.split_notation,
        result.plan.num_micro_batches,
        result.estimate.latency,
        result.states_explored,
        result.plans_evaluated,
        result.infeasible_plans,
        tuple((lat, p.notation) for lat, p in result.top_plans),
    )


class TestPlanCache:
    def test_memory_and_disk_hits_are_bit_identical(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        fresh = Planner(prof, clu, gbs, cfg).search()
        cache = PlanCache(tmp_path)

        miss = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert _signature(miss) == _signature(fresh)

        mem_hit = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert _signature(mem_hit) == _signature(fresh)

        cache.clear_memory()
        disk_hit = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert (cache.hits, cache.misses) == (2, 1)
        assert _signature(disk_hit) == _signature(fresh)

    def test_memory_only_cache(self):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache()
        plan_best(prof, clu, gbs, cfg, cache=cache)
        hit = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert cache.hits == 1 and len(cache) == 1
        assert hit.plan.notation

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        (tmp_path / f"{digest}.json").write_text("{not json")
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None
        assert cache.misses == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        path = tmp_path / f"{digest}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = "plan-cache-v0"
        path.write_text(json.dumps(payload))
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None

    def test_obs_counters_track_hits_and_misses(self):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache()
        obs.enable(reset_state=True)
        try:
            plan_best(prof, clu, gbs, cfg, cache=cache)
            plan_best(prof, clu, gbs, cfg, cache=cache)
            plan_best(prof, clu, gbs * 2, cfg, cache=cache)
            assert obs.counter("planner.cache.hit").value == 1
            assert obs.counter("planner.cache.miss").value == 2
        finally:
            obs.disable()
            obs.reset()

    def test_cached_sweep_hit_rate(self):
        """A fig12-style GBS sweep re-plans each grid point once: with a
        shared cache the second pass is all hits."""
        prof, clu, _, cfg = _problem()
        cache = PlanCache()
        points = [16, 32, 64]
        obs.enable(reset_state=True)
        try:
            for _ in range(2):
                for gbs in points:
                    plan_best(prof, clu, gbs, cfg, cache=cache)
            assert obs.counter("planner.cache.hit").value == len(points)
            assert obs.counter("planner.cache.miss").value == len(points)
        finally:
            obs.disable()
            obs.reset()
        assert cache.hits == len(points)


class TestDiskEviction:
    """Size-bounded LRU disk tier: oldest-mtime entries go first, recency
    is refreshed by disk hits, and the memory tier is kept consistent."""

    def _fill(self, cache, gbs_points):
        prof, clu, _, cfg = _problem()
        digests = {}
        for gbs in gbs_points:
            digests[gbs] = cache.store(
                prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
            )
        return prof, clu, cfg, digests

    def test_unbounded_by_default(self, tmp_path):
        cache = PlanCache(tmp_path)
        self._fill(cache, [16, 32, 64])
        assert cache.stats()["disk_entries"] == 3
        assert cache.stats()["max_disk_bytes"] is None

    def test_oldest_entry_evicted_first(self, tmp_path):
        cache = PlanCache(tmp_path)
        prof, clu, cfg, digests = self._fill(cache, [16, 32])
        size = (tmp_path / f"{digests[16]}.json").stat().st_size
        # Fits two entries; the third store must evict the LRU one.
        cache.max_disk_bytes = int(size * 2.5)
        now = os.stat(tmp_path).st_mtime
        os.utime(tmp_path / f"{digests[16]}.json", (now - 100, now - 100))
        os.utime(tmp_path / f"{digests[32]}.json", (now - 50, now - 50))

        cache.store(prof, clu, 64, cfg, Planner(prof, clu, 64, cfg).search())
        survivors = {p.stem for p in tmp_path.glob("*.json")}
        assert digests[16] not in survivors  # oldest gone
        assert digests[32] in survivors
        assert digests[16] not in cache._mem  # memory tier kept consistent
        assert cache.lookup(prof, clu, 16, cfg) is None

    def test_disk_hit_refreshes_recency(self, tmp_path):
        cache = PlanCache(tmp_path)
        prof, clu, cfg, digests = self._fill(cache, [16, 32])
        size = (tmp_path / f"{digests[16]}.json").stat().st_size
        now = os.stat(tmp_path).st_mtime
        os.utime(tmp_path / f"{digests[16]}.json", (now - 100, now - 100))
        os.utime(tmp_path / f"{digests[32]}.json", (now - 50, now - 50))

        # A disk hit on the older entry bumps its mtime past the other's.
        cache.clear_memory()
        assert cache.lookup(prof, clu, 16, cfg) is not None

        cache.max_disk_bytes = int(size * 2.5)
        cache.store(prof, clu, 64, cfg, Planner(prof, clu, 64, cfg).search())
        survivors = {p.stem for p in tmp_path.glob("*.json")}
        assert digests[16] in survivors  # recently used: protected
        assert digests[32] not in survivors

    def test_eviction_emits_obs_counter(self, tmp_path):
        cache = PlanCache(tmp_path)
        prof, clu, cfg, digests = self._fill(cache, [16])
        size = (tmp_path / f"{digests[16]}.json").stat().st_size
        cache.max_disk_bytes = int(size * 1.5)
        obs.enable(reset_state=True)
        try:
            cache.store(prof, clu, 32, cfg, Planner(prof, clu, 32, cfg).search())
            assert obs.counter("planner.cache.evicted").value == 1
        finally:
            obs.disable()
            obs.reset()

    def test_clear_disk(self, tmp_path):
        cache = PlanCache(tmp_path)
        prof, clu, cfg, _digests = self._fill(cache, [16, 32])
        assert cache.clear_disk() == 2
        assert cache.stats()["disk_entries"] == 0
        assert len(cache) == 0
        cache.clear_memory()
        assert cache.lookup(prof, clu, 16, cfg) is None

    def test_stats_shape(self, tmp_path):
        cache = PlanCache(tmp_path, max_disk_bytes=1 << 20)
        prof, clu, cfg, _digests = self._fill(cache, [16])
        cache.lookup(prof, clu, 16, cfg)
        cache.lookup(prof, clu, 999, cfg)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["memory_entries"] == 1
        assert stats["disk_entries"] == 1
        assert stats["disk_bytes"] > 0
        assert stats["max_disk_bytes"] == 1 << 20
        assert stats["directory"] == str(tmp_path)
        json.dumps(stats)  # JSON-safe for /v1/cache/stats


class TestDiskRobustness:
    """Service-load survival: corrupted entries degrade to misses (and are
    removed), concurrent processes sharing one disk tier never crash."""

    def test_corrupt_entry_is_removed_then_repopulated(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        path = tmp_path / f"{digest}.json"
        path.write_text("{not json")
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None
        # repeated lookups stay plain misses, and a re-plan repairs the tier
        assert cache.lookup(prof, clu, gbs, cfg) is None
        result = plan_best(prof, clu, gbs, cfg, cache=cache)
        assert path.exists()
        cache.clear_memory()
        assert _signature(cache.lookup(prof, clu, gbs, cfg)) == _signature(result)

    def test_truncated_payload_is_removed(self, tmp_path):
        """Valid JSON with the right schema but missing keys — the decode
        failure path, not the parse failure path."""
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        path = tmp_path / f"{digest}.json"
        payload = json.loads(path.read_text())
        del payload["plan"]
        path.write_text(json.dumps(payload))
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None
        assert not path.exists()

    def test_garbled_plan_payload_is_removed(self, tmp_path):
        prof, clu, gbs, cfg = _problem()
        cache = PlanCache(tmp_path)
        digest = cache.store(
            prof, clu, gbs, cfg, Planner(prof, clu, gbs, cfg).search()
        )
        path = tmp_path / f"{digest}.json"
        payload = json.loads(path.read_text())
        payload["plan"]["stages"] = [{"bogus": True}]
        path.write_text(json.dumps(payload))
        cache.clear_memory()
        assert cache.lookup(prof, clu, gbs, cfg) is None
        assert not path.exists()

    def test_concurrent_processes_share_disk_tier(self, tmp_path):
        """N processes race get/put on one directory (the serve worker-pool
        pattern): no crashes, and the tier ends up fully populated with
        decodable entries."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(target=_race_worker, args=(tmp_path, [16, 32, 64], barrier))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]

        prof, clu, _, cfg = _problem()
        cache = PlanCache(tmp_path)
        for gbs in [16, 32, 64]:
            assert cache.lookup(prof, clu, gbs, cfg) is not None
        assert cache.hits == 3 and cache.misses == 0


def _race_worker(directory, gbs_points, barrier):
    cache = PlanCache(directory)
    prof, clu, _, cfg = _problem()
    barrier.wait()
    for gbs in gbs_points:
        result = plan_best(prof, clu, gbs, cfg, cache=cache)
        if not result.plan.notation:
            raise SystemExit(3)


class TestDefaultCache:
    def teardown_method(self):
        configure_default(enabled=True)
        set_default_cache(None)
        configure_default(enabled=True)

    def test_default_is_lazy_memory_only(self):
        configure_default(enabled=True)
        c = default_cache()
        assert c is not None and c.directory is None
        assert default_cache() is c

    def test_disable(self):
        configure_default(enabled=False)
        assert default_cache() is None

    def test_directory(self, tmp_path):
        c = configure_default(directory=tmp_path)
        assert default_cache() is c
        assert c.directory == tmp_path

    def test_swap_default_restores_prior_state(self, tmp_path):
        original = configure_default(enabled=True)
        mine = PlanCache(tmp_path)
        prior = swap_default(mine)
        assert default_cache() is mine
        swap_default(*prior)
        assert default_cache() is original

"""Unit tests for the DAPPLE planner."""

import pytest

from repro.cluster import config_a, config_b, config_c
from repro.core import PlannerConfig, Planner, profile_model
from repro.core.plan import PlanKind
from repro.core.planner import _largest_divisor_leq, plan_best, plan_paper_family
from repro.models import uniform_model, vgg19


def _largest_divisor_leq_reference(n: int, cap: int) -> int:
    """The original O(n) descending scan, kept as the property-test oracle."""
    cap = max(1, min(cap, n))
    for d in range(cap, 0, -1):
        if n % d == 0:
            return d
    return 1


class TestHelpers:
    def test_largest_divisor(self):
        assert _largest_divisor_leq(16, 5) == 4
        assert _largest_divisor_leq(16, 16) == 16
        assert _largest_divisor_leq(16, 100) == 16
        assert _largest_divisor_leq(17, 4) == 1
        assert _largest_divisor_leq(12, 0) == 1

    def test_largest_divisor_matches_reference(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=300, deadline=None)
        @given(st.integers(1, 100_000), st.integers(-5, 100_005))
        def check(n, cap):
            assert _largest_divisor_leq(n, cap) == _largest_divisor_leq_reference(n, cap)

        check()

    def test_largest_divisor_properties(self):
        """Divides n, respects the (clamped) cap, and is maximal."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=300, deadline=None)
        @given(st.integers(1, 100_000), st.integers(-5, 100_005))
        def check(n, cap):
            d = _largest_divisor_leq(n, cap)
            eff_cap = max(1, min(cap, n))
            assert n % d == 0
            assert 1 <= d <= eff_cap
            assert not any(
                n % e == 0 for e in range(d + 1, eff_cap + 1)
            )

        check()

    def test_num_micro_batches_properties(self):
        """M divides GBS, respects the micro-batch cap, and is maximal.

        Pipelines target M = GBS / b (global micro-batch at the profiling
        size); single-stage DP plans target M = GBS / (b · replicas)
        (per-device gradient accumulation).  Either way the returned M must
        divide GBS exactly, never exceed the target, and be the largest
        such divisor.
        """
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.plan import Stage

        m = uniform_model("mb", 4, 1e9, 1000, 1e6, profile_batch=2)
        prof = profile_model(m)
        clu = config_a(4)
        d = clu.devices

        @settings(max_examples=200, deadline=None)
        @given(
            st.integers(1, 4096),
            st.sampled_from([None, 1, 2, 3, 4, 8]),
            st.integers(1, 4),
            st.booleans(),
        )
        def check(gbs, mbs, replicas, single_stage):
            planner = Planner(
                prof, clu, gbs, PlannerConfig(micro_batch_size=mbs)
            )
            if single_stage:
                stages = [Stage(0, 4, tuple(d[:replicas]))]
                target = max(1, gbs // (planner._mbs_dev * replicas))
            else:
                stages = [
                    Stage(0, 2, tuple(d[:replicas])),
                    Stage(2, 4, tuple(d[replicas:])) if replicas < 4
                    else Stage(2, 4, tuple(d[:1])),
                ]
                target = max(1, gbs // planner._mbs_dev)
            got = planner._num_micro_batches(stages)
            assert gbs % got == 0
            assert 1 <= got <= max(1, min(target, gbs))
            assert not any(
                gbs % e == 0 for e in range(got + 1, min(target, gbs) + 1)
            )

        check()


class TestBasicSearch:
    def test_compute_dense_model_prefers_dp(self):
        # Tiny weights + heavy compute: DP should win on any config.
        m = uniform_model("dense", 8, 50e9, 100_000, 1e6, profile_batch=8)
        prof = profile_model(m)
        res = Planner(prof, config_a(2), 128).search()
        assert res.plan.kind is PlanKind.DATA_PARALLEL

    def test_param_heavy_model_prefers_pipeline_on_slow_net(self):
        # Huge weights, slow flat network: DP's AllReduce is ruinous.
        m = uniform_model("fat", 8, 10e9, 60_000_000, 1e6, profile_batch=8)
        prof = profile_model(m)
        res = Planner(prof, config_c(4), 64).search()
        assert res.plan.kind is not PlanKind.DATA_PARALLEL

    def test_plan_valid_and_uses_all_devices(self):
        m = uniform_model("u", 10, 10e9, 1_000_000, 1e6, profile_batch=4)
        prof = profile_model(m)
        for cluster in (config_a(2), config_b(4)):
            res = Planner(prof, cluster, 64).search()
            res.plan.validate()
            assert res.plan.num_devices == cluster.num_devices

    def test_search_metadata(self):
        m = uniform_model("u", 6, 10e9, 1_000_000, 1e6, profile_batch=4)
        res = Planner(profile_model(m), config_b(4), 32).search()
        assert res.plans_evaluated > 0
        assert res.states_explored > 0

    def test_bad_gbs_rejected(self):
        m = uniform_model("u", 4, 1e9, 10, 1.0)
        with pytest.raises(ValueError):
            Planner(profile_model(m), config_b(2), 0)


class TestMemoryFeasibility:
    def test_oversized_model_excludes_dp(self):
        # 5 B params with adam: ~80 GB persistent -> DP on one 16 GB device
        # impossible; planner must pipeline.
        m = uniform_model("huge", 16, 10e9, 312_500_000, 1e6, profile_batch=1)
        prof = profile_model(m)
        res = Planner(prof, config_b(8), 8).search()
        assert res.plan.num_stages > 1
        assert res.infeasible_plans > 0

    def test_impossible_model_raises(self):
        # One layer that cannot fit anywhere.
        m = uniform_model("nofit", 2, 1e9, 3_000_000_000, 1e6, profile_batch=1)
        prof = profile_model(m)
        with pytest.raises(RuntimeError, match="no feasible plan"):
            Planner(prof, config_b(2), 2).search()

    def test_enforce_memory_off_allows_dp(self):
        m = uniform_model("huge", 4, 10e9, 800_000_000, 1e6, profile_batch=1)
        prof = profile_model(m)
        cfg = PlannerConfig(enforce_memory=False)
        res = Planner(prof, config_b(2), 4, cfg).search()
        res.plan.validate()  # runs without the memory filter


class TestConfigKnobs:
    def test_max_stages_respected(self):
        m = uniform_model("u", 12, 10e9, 40_000_000, 1e6, profile_batch=4)
        prof = profile_model(m)
        cfg = PlannerConfig(max_stages=2)
        res = Planner(prof, config_c(4), 32, cfg).search()
        assert res.plan.num_stages <= 2

    def test_beam_none_is_exhaustive_and_at_least_as_good(self):
        m = uniform_model("u", 6, 10e9, 30_000_000, 1e6, profile_batch=4)
        prof = profile_model(m)
        c = config_b(4)
        beam = Planner(prof, c, 32, PlannerConfig(beam_width=4)).search()
        full = Planner(prof, c, 32, PlannerConfig(beam_width=None)).search()
        assert full.estimate.latency <= beam.estimate.latency + 1e-12

    def test_stage_overhead_discourages_many_stages(self):
        m = uniform_model("u", 12, 10e9, 40_000_000, 1e6, profile_batch=4)
        prof = profile_model(m)
        c = config_c(4)
        free = Planner(prof, c, 32, PlannerConfig(stage_overhead_frac=0.0)).search()
        taxed = Planner(prof, c, 32, PlannerConfig(stage_overhead_frac=0.5)).search()
        assert taxed.plan.num_stages <= free.plan.num_stages

    def test_custom_micro_batch(self):
        m = uniform_model("u", 6, 10e9, 1_000_000, 1e6, profile_batch=4)
        prof = profile_model(m)
        res = Planner(prof, config_b(2), 32, PlannerConfig(micro_batch_size=8)).search()
        if res.plan.num_stages > 1:
            assert res.plan.num_micro_batches == 4


class TestStraightPlan:
    def test_straight_shape(self):
        m = uniform_model("u", 16, 10e9, 1_000_000, 1e6, profile_batch=2)
        p = Planner(profile_model(m), config_b(4), 16)
        sp = p.straight_plan()
        assert sp.kind is PlanKind.STRAIGHT
        assert sp.num_stages == 4

    def test_straight_none_when_more_gpus_than_layers(self):
        m = uniform_model("u", 3, 10e9, 1_000_000, 1e6, profile_batch=2)
        p = Planner(profile_model(m), config_b(4), 16)
        assert p.straight_plan() is None

    def test_straight_balanced(self):
        m = uniform_model("u", 16, 10e9, 1_000_000, 1e6, profile_batch=2)
        p = Planner(profile_model(m), config_b(4), 16)
        sp = p.straight_plan()
        sizes = [s.num_layers for s in sp.stages]
        assert max(sizes) - min(sizes) <= 1  # uniform layers -> even split


class TestPaperFamily:
    def test_family_restricted_to_published_shapes(self):
        prof = profile_model(vgg19())
        res = plan_paper_family(prof, config_c(4), 256)
        assert res.plan.num_stages <= 2 or res.plan.kind is PlanKind.STRAIGHT

    def test_facades(self):
        m = uniform_model("u", 6, 10e9, 1_000_000, 1e6, profile_batch=4)
        prof = profile_model(m)
        a = plan_best(prof, config_b(2), 16)
        b = plan_paper_family(prof, config_b(2), 16)
        assert a.estimate.latency <= b.estimate.latency + 1e-12

"""The vectorized planner path must be *bit-identical* to the scalar path.

This is the contract of :class:`repro.core.fast_scan.CompletionScanner`:
not approximate agreement but the same winning plan, the same latency float,
and the same search trajectory (states explored, plans evaluated, plans
rejected for memory) for every zoo model × hardware config × GBS point.
A reduced beam keeps the cross-product affordable; both paths run the same
search code, so the beam setting doesn't weaken the equivalence claim.
"""

import pytest

from repro.cluster import config_by_name
from repro.core import CompletionScanner, ParallelPlan, Stage, profile_model
from repro.core.planner import Planner, PlannerConfig
from repro.models import PAPER_FIGURES, get_model

#: Two GBS points per model: the paper's figure setting plus a second point
#: exercising a different micro-batch count.
GBS_POINTS = {
    "gnmt16": (1024, 256),
    "bert48": (64, 256),
    "xlnet36": (128, 32),
    "resnet50": (1024, 256),
    "vgg19": (2048, 512),
    "amoebanet36": (128, 512),
}

ZOO = sorted(PAPER_FIGURES)
CONFIGS = ["A", "B", "C"]


def plan_signature(result):
    return (
        result.plan.notation,
        result.plan.split_notation,
        tuple(
            (s.layer_lo, s.layer_hi, tuple(d.global_id for d in s.devices))
            for s in result.plan.stages
        ),
        result.plan.num_micro_batches,
    )


def beam_signature(result):
    return tuple(
        (lat, p.notation, p.split_notation) for lat, p in result.top_plans
    )


class TestSearchEquivalence:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("model", ZOO)
    def test_vectorized_matches_scalar(self, model, config):
        """Three-way: level-batched (default) vs per-state scan vs scalar."""
        prof = profile_model(get_model(model))
        cluster = config_by_name(config, 16)
        for gbs in GBS_POINTS[model]:
            level = Planner(
                prof, cluster, gbs, PlannerConfig(beam_width=8)
            ).search()
            per_state = Planner(
                prof, cluster, gbs,
                PlannerConfig(beam_width=8, level_batch=False),
            ).search()
            slow = Planner(
                prof, cluster, gbs, PlannerConfig(beam_width=8, use_fast_scan=False)
            ).search()
            for other in (per_state, slow):
                assert plan_signature(level) == plan_signature(other)
                # Bit-identical, not allclose: all paths run the same
                # IEEE-754 operation sequence.
                assert level.estimate.latency == other.estimate.latency
                assert level.states_explored == other.states_explored
                assert level.plans_evaluated == other.plans_evaluated
                assert level.infeasible_plans == other.infeasible_plans
                # The whole beam, not just the winner.
                assert beam_signature(level) == beam_signature(other)


class TestMemoryFeasibilityEquivalence:
    @pytest.mark.parametrize(
        "model,config,devices,gbs",
        [
            ("amoebanet36", "A", 16, 128),  # many memory-infeasible splits
            ("bert48", "A", 8, 64),  # tight single-machine memory
            ("vgg19", "C", 16, 2048),  # everything fits
        ],
    )
    def test_scan_mask_matches_plan_fits_memory(self, model, config, devices, gbs):
        """The scan's feasibility mask equals scalar ``plan_fits_memory``
        on the corresponding completion plans, split by split."""
        prof = profile_model(get_model(model))
        cluster = config_by_name(config, devices)
        planner = Planner(prof, cluster, gbs)
        scanner = CompletionScanner(prof, cluster)
        n = prof.num_layers
        m = planner._m_multi

        half = devices // 2
        groups = [tuple(cluster.devices[:half]), tuple(cluster.devices[:1])]
        tails = [tuple(cluster.devices[half:]), tuple(cluster.devices[1:])]
        res = scanner.scan_completions(
            0,
            (),
            groups,
            tails,
            global_batch_size=gbs,
            num_micro_batches=m,
            enforce_memory=True,
        )
        for r, (g, t) in enumerate(zip(groups, tails)):
            for k, j2 in enumerate(res.splits):
                plan = ParallelPlan(
                    prof.graph,
                    [Stage(0, int(j2), g), Stage(int(j2), n, t)],
                    gbs,
                    m,
                )
                assert bool(res.feasible[r, k]) == planner.plan_fits_memory(plan), (
                    r,
                    int(j2),
                )


class TestScanLatencyValues:
    def test_finite_entries_match_evaluate_plan(self):
        """Spot-check the scan matrix against scalar evaluate_plan with a
        nonempty prefix (three-stage completions)."""
        from repro.core.latency import evaluate_plan

        prof = profile_model(get_model("gnmt16"))
        cluster = config_by_name("C", 16)
        gbs = 1024
        planner = Planner(prof, cluster, gbs)
        m = planner._m_multi
        n = prof.num_layers

        prefix = (Stage(0, 4, tuple(cluster.devices[:4])),)
        groups = [tuple(cluster.devices[4:10])]
        tails = [tuple(cluster.devices[10:])]
        scanner = CompletionScanner(prof, cluster)
        res = scanner.scan_completions(
            4,
            prefix,
            groups,
            tails,
            global_batch_size=gbs,
            num_micro_batches=m,
            enforce_memory=False,
        )
        for k, j2 in enumerate(res.splits):
            plan = ParallelPlan(
                prof.graph,
                [prefix[0], Stage(4, int(j2), groups[0]), Stage(int(j2), n, tails[0])],
                gbs,
                m,
            )
            ref = evaluate_plan(prof, cluster, plan).latency
            assert res.latency[0, k] == ref  # bit-identical

    def test_empty_scan(self):
        prof = profile_model(get_model("gnmt16"))
        cluster = config_by_name("A", 16)
        scanner = CompletionScanner(prof, cluster)
        res = scanner.scan_completions(
            prof.num_layers - 1,
            (),
            [],
            [],
            global_batch_size=64,
            num_micro_batches=4,
        )
        assert res.evaluated == 0 and res.latency.size == 0

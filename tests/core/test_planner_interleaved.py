"""Planner support for interleaved virtual-stage candidates."""

import pytest

from repro.cluster import config_b
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.latency import evaluate_plan
from repro.models import uniform_model


@pytest.fixture
def setup():
    model = uniform_model("u", 16, 9e9, 1_000_000, 1e5, profile_batch=1)
    cluster = config_b(4)
    return model, cluster, profile_model(model)


class TestInterleavedCandidates:
    def test_candidates_generated_and_valid(self, setup):
        _, cluster, prof = setup
        planner = Planner(prof, cluster, 8)
        plans = planner.interleaved_plans()
        assert len(plans) == 2  # V=2 and V=3 fit 16 layers on 4 devices
        for p in plans:
            p.validate()
            assert p.meta["interleaved"]

    def test_no_candidates_when_layers_scarce(self):
        model = uniform_model("s", 6, 9e9, 1_000, 1e4, profile_batch=1)
        prof = profile_model(model)
        planner = Planner(prof, config_b(4), 8)
        assert planner.interleaved_plans() == []

    def test_flag_never_hurts(self, setup):
        _, cluster, prof = setup
        base = Planner(prof, cluster, 8).search()
        ext = Planner(
            prof, cluster, 8, PlannerConfig(consider_interleaved=True)
        ).search()
        assert ext.estimate.latency <= base.estimate.latency + 1e-12

    def test_interleaved_latency_accounts_for_device_sharing(self, setup):
        """The analytic model must not treat V stages on one device as
        free parallelism: an interleaved straight plan's steady phase is at
        least the plain straight plan's (same per-device work)."""
        model, cluster, prof = setup
        from repro.core.plan import ParallelPlan, Stage, interleaved_straight_plan

        m = 8
        plain = ParallelPlan(
            model,
            [Stage(4 * i, 4 * i + 4, (cluster.device(i),)) for i in range(4)],
            m,
            m,
        )
        inter = interleaved_straight_plan(model, cluster.devices, m, m, 2)
        e_plain = evaluate_plan(prof, cluster, plain)
        e_inter = evaluate_plan(prof, cluster, inter)
        assert e_inter.steady >= e_plain.steady * 0.95

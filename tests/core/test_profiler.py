"""Unit tests for the analytical profiler."""

import pytest

from repro.cluster.device import GPUSpec, V100
from repro.core import profile_model
from repro.models import uniform_model, vgg19


@pytest.fixture
def prof():
    return profile_model(uniform_model("u", 5, 9e9, 1000, 4e3, profile_batch=2))


class TestLayerTimes:
    def test_fwd_time_from_flops(self, prof):
        # 9e9 FLOPs on a 9 TFLOP/s V100 = 1 ms per sample + 20 µs overhead.
        assert prof.fwd_time(0, 1, 1.0) == pytest.approx(1e-3 + 20e-6)

    def test_bwd_is_2x_fwd(self, prof):
        f = prof.fwd_time(0, 3, 1.0)
        b = prof.bwd_time(0, 3, 1.0)
        overhead = 3 * 20e-6
        assert (b - overhead) == pytest.approx(2 * (f - overhead))

    def test_time_linear_in_batch(self, prof):
        t1 = prof.fwd_time(0, 5, 1.0)
        t4 = prof.fwd_time(0, 5, 4.0)
        overhead = 5 * 20e-6
        assert (t4 - overhead) == pytest.approx(4 * (t1 - overhead))

    def test_fractional_batch_supported(self, prof):
        assert prof.fwd_time(0, 1, 0.25) < prof.fwd_time(0, 1, 1.0)

    def test_nonpositive_batch_rejected(self, prof):
        with pytest.raises(ValueError):
            prof.fwd_time(0, 1, 0)
        with pytest.raises(ValueError):
            prof.bwd_time(0, 1, -1)

    def test_range_additivity(self, prof):
        whole = prof.fwd_time(0, 5, 2.0)
        parts = prof.fwd_time(0, 2, 2.0) + prof.fwd_time(2, 5, 2.0)
        assert whole == pytest.approx(parts)

    def test_bad_range(self, prof):
        with pytest.raises(IndexError):
            prof.fwd_time(3, 3, 1.0)
        with pytest.raises(IndexError):
            prof.param_bytes(0, 99)


class TestSizes:
    def test_param_bytes(self, prof):
        assert prof.param_bytes(0, 5) == 5 * 1000 * 4

    def test_stored_bytes_scale_with_batch(self, prof):
        assert prof.stored_bytes(0, 5, 3.0) == pytest.approx(3 * 5 * 2 * 4e3)

    def test_boundary_bytes(self, prof):
        assert prof.boundary_bytes(2, 10.0) == pytest.approx(10 * 4e3)
        assert prof.boundary_bytes(0, 10.0) == 0.0

    def test_state_bytes_adam(self, prof):
        # uniform_model defaults to adam: 12 bytes/param persistent.
        assert prof.state_bytes(0, 5) == 5 * 1000 * 12


class TestGPUDependence:
    def test_faster_gpu_shorter_times(self):
        g = uniform_model("u", 3, 9e9, 10, 1.0)
        slow = profile_model(g, GPUSpec("slow", 16 * 2**30, 1e12))
        fast = profile_model(g, GPUSpec("fast", 16 * 2**30, 1e13))
        assert fast.fwd_time(0, 3, 1.0) < slow.fwd_time(0, 3, 1.0)

    def test_vgg_profile_sane(self):
        prof = profile_model(vgg19(), V100)
        # Whole-model forward at batch 32 should be tens of ms on a V100.
        t = prof.fwd_time(0, prof.num_layers, 32)
        assert 0.05 < t < 0.5

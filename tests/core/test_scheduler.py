"""Unit and property tests for micro-batch schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    MicroBatchTask,
    dapple_schedule,
    gpipe_schedule,
    max_resident_micro_batches,
    validate_schedule,
    warmup_counts,
)


class TestWarmupCounts:
    def test_pa_formula(self):
        # Ki = min(S - i, D); S=4, M large, D large.
        assert warmup_counts(4, 100, "PA") == [4, 3, 2, 1]

    def test_pb_formula(self):
        # Ki = min(2(S - i) - 1, D)
        assert warmup_counts(4, 100, "PB") == [7, 5, 3, 1]

    def test_memory_cap_applies(self):
        assert warmup_counts(4, 100, "PB", max_in_memory=3) == [3, 3, 3, 1]

    def test_capped_by_micro_batches(self):
        assert warmup_counts(4, 2, "PA") == [2, 2, 2, 1]

    def test_last_stage_always_one(self):
        for policy in ("PA", "PB"):
            assert warmup_counts(5, 10, policy)[-1] == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            warmup_counts(0, 1)
        with pytest.raises(ValueError):
            warmup_counts(1, 0)
        with pytest.raises(ValueError):
            warmup_counts(2, 2, "PC")
        with pytest.raises(ValueError):
            warmup_counts(2, 2, "PA", max_in_memory=0)


class TestDappleSchedule:
    def test_last_stage_strict_1f1b(self):
        sched = dapple_schedule(3, 4)
        last = [repr(t) for t in sched[-1]]
        assert last == ["F0", "B0", "F1", "B1", "F2", "B2", "F3", "B3"]

    def test_first_stage_warmup(self):
        sched = dapple_schedule(3, 5)
        first = [repr(t) for t in sched[0]]
        assert first[:3] == ["F0", "F1", "F2"]  # K0 = 3 warm-up forwards
        assert first[3] == "B0"  # then strict interleave

    def test_valid_for_all_sizes(self):
        for s in range(1, 6):
            for m in range(1, 9):
                validate_schedule(dapple_schedule(s, m), m)

    def test_memory_bound_by_k(self):
        sched = dapple_schedule(4, 20, policy="PA")
        ks = warmup_counts(4, 20, "PA")
        for tasks, k in zip(sched, ks):
            assert max_resident_micro_batches(tasks) == k

    def test_pb_holds_more_in_flight(self):
        pa = dapple_schedule(4, 20, policy="PA")
        pb = dapple_schedule(4, 20, policy="PB")
        assert max_resident_micro_batches(pb[0]) > max_resident_micro_batches(pa[0])


class TestGPipeSchedule:
    def test_all_forwards_then_backwards(self):
        sched = gpipe_schedule(2, 3)
        kinds = [t.kind for t in sched[0]]
        assert kinds == ["F", "F", "F", "B", "B", "B"]

    def test_backwards_reverse_order(self):
        sched = gpipe_schedule(1, 4)
        b_order = [t.micro_batch for t in sched[0] if t.kind == "B"]
        assert b_order == [3, 2, 1, 0]

    def test_memory_grows_with_m(self):
        for m in (2, 5, 8):
            sched = gpipe_schedule(3, m)
            assert max_resident_micro_batches(sched[0]) == m

    def test_valid(self):
        validate_schedule(gpipe_schedule(4, 6), 6)


class TestValidateSchedule:
    def test_detects_backward_before_forward(self):
        bad = [[MicroBatchTask("B", 0), MicroBatchTask("F", 0)]]
        with pytest.raises(ValueError, match="before its forward"):
            validate_schedule(bad, 1)

    def test_detects_duplicates(self):
        bad = [[MicroBatchTask("F", 0), MicroBatchTask("F", 0), MicroBatchTask("B", 0)]]
        with pytest.raises(ValueError, match="duplicate"):
            validate_schedule(bad, 1)

    def test_detects_missing(self):
        bad = [[MicroBatchTask("F", 0), MicroBatchTask("B", 0)]]
        with pytest.raises(ValueError, match="incomplete"):
            validate_schedule(bad, 2)


class TestScheduleProperties:
    @given(
        s=st.integers(min_value=1, max_value=8),
        m=st.integers(min_value=1, max_value=32),
        policy=st.sampled_from(["PA", "PB"]),
        d=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_dapple_always_valid_and_bounded(self, s, m, policy, d):
        sched = dapple_schedule(s, m, policy=policy, max_in_memory=d)
        validate_schedule(sched, m)
        ks = warmup_counts(s, m, policy, max_in_memory=d)
        for tasks, k in zip(sched, ks):
            # Peak resident micro-batches never exceeds the warm-up count,
            # which never exceeds the memory cap D (paper's central claim).
            assert max_resident_micro_batches(tasks) == k <= max(1, min(d, m))

    @given(s=st.integers(1, 8), m=st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_gpipe_memory_always_m(self, s, m):
        sched = gpipe_schedule(s, m)
        validate_schedule(sched, m)
        assert all(max_resident_micro_batches(t) == m for t in sched)

    @given(s=st.integers(2, 8), m=st.integers(2, 32))
    @settings(max_examples=100, deadline=None)
    def test_dapple_never_worse_memory_than_gpipe(self, s, m):
        da = dapple_schedule(s, m)
        gp = gpipe_schedule(s, m)
        for a, g in zip(da, gp):
            assert max_resident_micro_batches(a) <= max_resident_micro_batches(g)

"""Unit tests for plan JSON (de)serialization."""

import json

import pytest

from repro.cluster import config_a, config_b
from repro.core.plan import ParallelPlan, Stage
from repro.core.serialization import load_plan, plan_from_dict, plan_to_dict, save_plan
from repro.models import uniform_model


@pytest.fixture
def model():
    return uniform_model("u", 10, 1e9, 1000, 1e4, profile_batch=2)


@pytest.fixture
def cluster():
    return config_a(2)


@pytest.fixture
def plan(model, cluster):
    d = cluster.devices
    return ParallelPlan(
        model,
        [Stage(0, 6, tuple(d[:8])), Stage(6, 10, tuple(d[8:]))],
        64,
        8,
        meta={"source": "test"},
    )


class TestRoundTrip:
    def test_dict_roundtrip(self, plan, model, cluster):
        data = plan_to_dict(plan)
        restored = plan_from_dict(data, model, cluster)
        assert restored.notation == plan.notation
        assert restored.split_positions == plan.split_positions
        assert restored.num_micro_batches == plan.num_micro_batches
        assert [d.global_id for s in restored.stages for d in s.devices] == [
            d.global_id for s in plan.stages for d in s.devices
        ]
        assert restored.meta == {"source": "test"}

    def test_file_roundtrip(self, plan, model, cluster, tmp_path):
        path = save_plan(plan, tmp_path / "plan.json")
        assert path.exists()
        restored = load_plan(path, model, cluster)
        assert restored.notation == plan.notation

    def test_json_is_plain(self, plan):
        text = json.dumps(plan_to_dict(plan))
        assert "8" in text  # device ids serialized as ints


class TestValidation:
    def test_wrong_depth_rejected(self, plan, cluster):
        other = uniform_model("v", 5, 1e9, 1000, 1e4)
        with pytest.raises(ValueError, match="layer"):
            plan_from_dict(plan_to_dict(plan), other, cluster)

    def test_missing_device_rejected(self, plan, model):
        small = config_b(4)
        with pytest.raises(ValueError, match="device"):
            plan_from_dict(plan_to_dict(plan), model, small)

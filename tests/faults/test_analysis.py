"""Ensemble-analysis tests: critical paths, bubbles, Monte-Carlo reports."""

import numpy as np
import pytest

from repro.faults import (
    ComputeJitter,
    SlowDevice,
    critical_path,
    critical_path_stages,
    run_ensemble,
    stage_bubble_fractions,
)
from repro.runtime import execute_plan
from repro.sim import Op, Simulator, TaskGraph

from tests.faults.test_inject import small_setup


class TestCriticalPath:
    def test_serial_chain_is_whole_path(self):
        g = TaskGraph()
        for i, name in enumerate(("a", "b", "c")):
            g.add(Op(name, 1.0, resources=("r0",), tags={"stage": i}))
        g.add_dep("a", "b")
        g.add_dep("b", "c")
        res = Simulator(g).run()
        path = critical_path(g, res.trace)
        assert [e.name for e in path] == ["a", "b", "c"]
        assert critical_path_stages(path) == (0, 1, 2)

    def test_slow_branch_wins(self):
        # Two independent branches join at a sink; only the slow branch can
        # gate the makespan.
        g = TaskGraph()
        g.add(Op("slow", 5.0, resources=("r0",), tags={"stage": 0}))
        g.add(Op("fast", 1.0, resources=("r1",), tags={"stage": 1}))
        g.add(Op("sink", 1.0, resources=("r2",), tags={"stage": 2}))
        g.add_dep("slow", "sink")
        g.add_dep("fast", "sink")
        res = Simulator(g).run()
        names = [e.name for e in critical_path(g, res.trace)]
        assert names == ["slow", "sink"]

    def test_resource_contention_links_the_path(self):
        # b has no dependency on a but waits for a's resource; the binding
        # constraint must follow the resource chain.
        g = TaskGraph()
        g.add(Op("a", 2.0, resources=("r0",), tags={"stage": 0}))
        g.add(Op("b", 1.0, resources=("r0",), tags={"stage": 0}))
        res = Simulator(g).run()
        names = [e.name for e in critical_path(g, res.trace)]
        assert names == ["a", "b"]

    def test_signature_dedupes_consecutive_stages(self):
        class E:
            def __init__(self, stage):
                self.tags = {} if stage is None else {"stage": stage}

        assert critical_path_stages(
            [E(0), E(0), E(None), E(1), E(1), E(0)]
        ) == (0, 1, 0)

    def test_stage_bubbles_in_unit_range(self):
        prof, cluster, plan = small_setup()
        res = execute_plan(prof, cluster, plan)
        bubbles = stage_bubble_fractions(res)
        assert set(bubbles) == {0, 1}
        assert all(0.0 <= v < 1.0 for v in bubbles.values())


class TestRunEnsemble:
    MODELS = (SlowDevice(factor=2.0), ComputeJitter(sigma=0.1))

    def _report(self, jobs=1, n=4):
        prof, cluster, plan = small_setup()
        return run_ensemble(
            prof, cluster, plan, self.MODELS, range(n), jobs=jobs
        )

    def test_report_statistics(self):
        rep = self._report()
        assert len(rep.outcomes) == 4
        assert rep.makespans.shape == (4,)
        assert rep.clean_makespan > 0
        assert rep.p50 <= rep.p95 <= rep.p99 <= rep.worst
        assert rep.slowdown(0.95) > 1.0
        assert 0.0 <= rep.critical_path_shift() <= 1.0

    def test_bubble_attribution_rows(self):
        rep = self._report()
        rows = rep.bubble_attribution()
        assert [r.stage for r in rows] == [0, 1]
        for r in rows:
            assert r.inflation == r.perturbed_fraction - r.clean_fraction

    def test_deterministic_across_calls(self):
        a, b = self._report(), self._report()
        assert np.array_equal(a.makespans, b.makespans)
        assert a.outcomes == b.outcomes

    def test_parallel_matches_serial(self):
        serial, par = self._report(jobs=1), self._report(jobs=2)
        assert np.array_equal(serial.makespans, par.makespans)
        assert serial.outcomes == par.outcomes

    def test_empty_seed_list_rejected(self):
        prof, cluster, plan = small_setup()
        with pytest.raises(ValueError, match="seed"):
            run_ensemble(prof, cluster, plan, self.MODELS, [])


@pytest.mark.slow
class TestLargeEnsemble:
    def test_bert48_ensemble_statistics(self):
        from repro.experiments.common import best_plan, cluster, profile

        prof, clu = profile("bert48"), cluster("A")
        plan = best_plan("bert48", "A", 64).plan
        rep = run_ensemble(
            prof, clu, plan,
            (SlowDevice(factor=1.5), ComputeJitter(sigma=0.05)),
            range(32), jobs=None,
        )
        assert len(rep.outcomes) == 32
        assert rep.slowdown(0.95) > 1.0
        assert rep.p99 >= rep.p50 > rep.clean_makespan

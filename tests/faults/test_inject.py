"""Injection-layer tests: clean-path identity, rebuild fidelity, seeding."""

import numpy as np
import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.faults import (
    ComputeJitter,
    SlowDevice,
    execute_plan_faulted,
    perturb_graph,
    rebuild_with_durations,
)
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.sim import Op, Simulator, TaskGraph
from repro.sim.engine import MemEffect


def small_setup():
    model = uniform_model("flt", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
    cluster = config_b(2)
    prof = profile_model(model)
    d = cluster.devices
    plan = ParallelPlan(model, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4)
    return prof, cluster, plan


def tiny_graph():
    g = TaskGraph()
    a = Op("a", 1.0, resources=("r0",), priority=1.0, tags={"kind": "F"})
    a.mem_effects.append(MemEffect("dev:0", 64.0))
    g.add(a)
    g.add(Op("b", 2.0, resources=("r0", "r1"), tags={"kind": "send"}))
    g.add(Op("c", 0.0))
    g.add_dep("a", "b")
    g.add_dep("a", "c")
    return g


class TestRebuildWithDurations:
    def test_structure_preserved(self):
        g = tiny_graph()
        g2 = rebuild_with_durations(g, [3.0, 2.0, 0.0])
        assert g2._order == g._order
        assert g2._succ == g._succ
        ops, ops2 = g.ops(), g2.ops()
        assert [op.duration for op in ops2] == [3.0, 2.0, 0.0]
        for op, op2 in zip(ops, ops2):
            assert op2.resources == op.resources
            assert op2.priority == op.priority
            assert op2.tags == op.tags
            assert op2.mem_effects == op.mem_effects
            assert op2 is not op

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            rebuild_with_durations(tiny_graph(), [1.0])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            rebuild_with_durations(tiny_graph(), [1.0, -0.5, 0.0])


class TestPerturbGraph:
    def test_no_models_returns_same_object(self):
        g = tiny_graph()
        assert perturb_graph(g, (), seed=123) is g

    def test_seeded_and_reproducible(self):
        g = tiny_graph()
        models = (ComputeJitter(sigma=0.5, kinds=None),)
        d1 = [op.duration for op in perturb_graph(g, models, 7).ops()]
        d2 = [op.duration for op in perturb_graph(g, models, 7).ops()]
        d3 = [op.duration for op in perturb_graph(g, models, 8).ops()]
        assert d1 == d2
        assert d1 != d3
        assert all(d >= 0 for d in d1)

    def test_appending_model_keeps_earlier_draws(self):
        # Child generators are spawned per model, so adding a model must not
        # shift the draws consumed by the models before it.
        g = tiny_graph()
        jit = ComputeJitter(sigma=0.5, kinds=None)
        only = perturb_graph(g, (jit,), 7).ops()
        both = perturb_graph(g, (jit, SlowDevice(factor=1.0 + 1e-12)), 7).ops()
        np.testing.assert_allclose(
            [op.duration for op in both], [op.duration for op in only], rtol=1e-9
        )


class TestExecutePlanFaulted:
    def test_clean_path_byte_identical(self):
        prof, cluster, plan = small_setup()
        clean = execute_plan(prof, cluster, plan)
        faulted = execute_plan_faulted(prof, cluster, plan, models=(), seed=0)
        assert faulted.makespan == clean.iteration_time
        assert [
            (e.name, e.start, e.end) for e in faulted.result.trace.events
        ] == [(e.name, e.start, e.end) for e in clean.trace.events]

    def test_perturbed_run_reproducible_and_slower(self):
        prof, cluster, plan = small_setup()
        models = (SlowDevice(factor=2.0), ComputeJitter(sigma=0.1))
        a = execute_plan_faulted(prof, cluster, plan, models, seed=3)
        b = execute_plan_faulted(prof, cluster, plan, models, seed=3)
        clean = execute_plan(prof, cluster, plan)
        assert a.makespan == b.makespan
        assert a.makespan > clean.iteration_time

    def test_engines_agree_on_perturbed_run(self):
        prof, cluster, plan = small_setup()
        models = (SlowDevice(factor=1.8), ComputeJitter(sigma=0.2))
        ref = execute_plan_faulted(
            prof, cluster, plan, models, seed=5, sim_engine="reference"
        )
        fast = execute_plan_faulted(
            prof, cluster, plan, models, seed=5, sim_engine="compiled"
        )
        assert ref.makespan == fast.makespan
        assert [
            (e.name, e.start, e.end) for e in ref.result.trace.events
        ] == [(e.name, e.start, e.end) for e in fast.result.trace.events]

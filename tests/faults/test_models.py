"""Unit tests of the perturbation models: determinism, scope, validation."""

import numpy as np
import pytest

from repro.faults.models import (
    COMM_KINDS,
    ComputeJitter,
    DegradedLink,
    SlowDevice,
    TransientFailure,
)
from repro.sim import Op


def tagged_ops():
    """A hand-built op list shaped like an executor graph: compute ops on
    per-device GPU resources, transfers on link resources."""
    ops = []
    for i in range(8):
        dev = f"gpu:{i % 2}"
        ops.append(
            Op(f"F{i}", 1.0, resources=(dev,), tags={"kind": "F", "stage": i % 2})
        )
    for i in range(4):
        ops.append(
            Op(f"send{i}", 0.5, resources=(f"nic:{i % 2}",), tags={"kind": "send"})
        )
    ops.append(Op("barrier", 0.0))
    return ops


def durations(ops):
    return [op.duration for op in ops]


class TestComputeJitter:
    def test_deterministic_given_rng_seed(self):
        ops = tagged_ops()
        a = ComputeJitter(sigma=0.3).perturb(ops, durations(ops), np.random.default_rng(1))
        b = ComputeJitter(sigma=0.3).perturb(ops, durations(ops), np.random.default_rng(1))
        c = ComputeJitter(sigma=0.3).perturb(ops, durations(ops), np.random.default_rng(2))
        assert a == b
        assert a != c

    def test_only_compute_kinds_touched(self):
        ops = tagged_ops()
        out = ComputeJitter(sigma=0.5).perturb(ops, durations(ops), np.random.default_rng(0))
        for op, before, after in zip(ops, durations(ops), out):
            if op.tags.get("kind") in COMM_KINDS or op.duration == 0.0:
                assert after == before

    def test_uniform_bounds(self):
        ops = tagged_ops()
        out = ComputeJitter(sigma=0.2, distribution="uniform").perturb(
            ops, durations(ops), np.random.default_rng(0)
        )
        for op, after in zip(ops, out):
            if op.tags.get("kind") == "F":
                assert 0.8 * op.duration <= after <= 1.2 * op.duration

    def test_kinds_none_matches_positive_durations(self):
        ops = [Op("a", 1.0), Op("b", 0.0)]
        out = ComputeJitter(sigma=0.4, kinds=None).perturb(
            ops, durations(ops), np.random.default_rng(3)
        )
        assert out[0] != 1.0
        assert out[1] == 0.0

    def test_input_not_mutated(self):
        ops = tagged_ops()
        durs = durations(ops)
        ComputeJitter(sigma=0.5).perturb(ops, durs, np.random.default_rng(0))
        assert durs == durations(ops)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(sigma=-0.1), dict(distribution="gamma"),
         dict(sigma=1.0, distribution="uniform")],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ComputeJitter(**kwargs)


class TestSlowDevice:
    def test_victim_selection_seed_stable(self):
        ops = tagged_ops()
        m = SlowDevice(factor=2.0)
        assert m.pick_victims(ops, np.random.default_rng(5)) == m.pick_victims(
            ops, np.random.default_rng(5)
        )

    def test_all_victim_ops_scaled(self):
        ops = tagged_ops()
        m = SlowDevice(factor=2.0, devices=("gpu:1",))
        out = m.perturb(ops, durations(ops), np.random.default_rng(0))
        for op, before, after in zip(ops, durations(ops), out):
            expect = before * 2.0 if "gpu:1" in op.resources else before
            assert after == expect

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            SlowDevice(factor=0.5)


class TestDegradedLink:
    def test_persistent_slows_all_transfers_on_victim(self):
        ops = tagged_ops()
        m = DegradedLink(factor=3.0, links=("nic:0",))
        out = m.perturb(ops, durations(ops), np.random.default_rng(0))
        for op, before, after in zip(ops, durations(ops), out):
            if op.tags.get("kind") in COMM_KINDS and "nic:0" in op.resources:
                assert after == before * 3.0
            else:
                assert after == before

    def test_flaky_extremes(self):
        ops = tagged_ops()
        never = DegradedLink(factor=3.0, links=("nic:0",), flaky_prob=0.0)
        always = DegradedLink(factor=3.0, links=("nic:0",), flaky_prob=1.0)
        assert never.perturb(ops, durations(ops), np.random.default_rng(0)) == durations(ops)
        hit = always.perturb(ops, durations(ops), np.random.default_rng(0))
        assert any(a != b for a, b in zip(hit, durations(ops)))

    def test_flaky_prob_validated(self):
        with pytest.raises(ValueError, match="flaky_prob"):
            DegradedLink(flaky_prob=1.5)


class TestTransientFailure:
    def test_exactly_one_op_stalled_per_victim(self):
        ops = tagged_ops()
        m = TransientFailure(stall=5.0, devices=("gpu:0",))
        out = m.perturb(ops, durations(ops), np.random.default_rng(0))
        diffs = [a - b for a, b in zip(out, durations(ops))]
        assert sorted(diffs)[-1] == 5.0
        assert sum(1 for d in diffs if d != 0.0) == 1

    def test_position_pins_the_stalled_op(self):
        ops = tagged_ops()
        first = TransientFailure(stall=5.0, devices=("gpu:0",), position=0.0)
        last = TransientFailure(stall=5.0, devices=("gpu:0",), position=1.0)
        gpu0 = [i for i, op in enumerate(ops) if "gpu:0" in op.resources]
        out_first = first.perturb(ops, durations(ops), np.random.default_rng(0))
        out_last = last.perturb(ops, durations(ops), np.random.default_rng(0))
        assert out_first[gpu0[0]] == ops[gpu0[0]].duration + 5.0
        assert out_last[gpu0[-1]] == ops[gpu0[-1]].duration + 5.0

    def test_zero_stall_is_identity(self):
        ops = tagged_ops()
        m = TransientFailure(stall=0.0)
        assert m.perturb(ops, durations(ops), np.random.default_rng(0)) == durations(ops)

    def test_position_validated(self):
        with pytest.raises(ValueError, match="position"):
            TransientFailure(position=2.0)

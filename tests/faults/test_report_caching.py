"""Regression tests: EnsembleReport derived statistics are memoized, and
run_ensemble can reuse a precomputed clean outcome.

The sweep/robust layers read ``quantile``/``quantile_convergence``/
``bubble_attribution`` repeatedly per report; each must be computed once
and answered from the report's cache afterwards — repeated access does no
extra numpy work.
"""

import numpy as np
import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.faults import ComputeJitter, SlowDevice, run_ensemble
from repro.faults.analysis import evaluate_seed
from repro.models import uniform_model


@pytest.fixture()
def problem():
    model = uniform_model("cache", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
    prof = profile_model(model)
    cluster = config_b(2)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
    )
    return prof, cluster, plan


@pytest.fixture()
def report(problem):
    prof, cluster, plan = problem
    return run_ensemble(
        prof, cluster, plan, (ComputeJitter(sigma=0.1),), range(5)
    )


def _count_quantile_calls(monkeypatch):
    calls = {"n": 0}
    real = np.quantile

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(np, "quantile", counting)
    return calls


class TestDerivedStatisticCaching:
    def test_quantile_computed_once(self, report, monkeypatch):
        calls = _count_quantile_calls(monkeypatch)
        first = report.quantile(0.95)
        after_first = calls["n"]
        assert after_first == 1
        for _ in range(5):
            assert report.quantile(0.95) == first
        assert calls["n"] == after_first
        # A different q is a different cache entry, computed once itself.
        report.quantile(0.5)
        report.quantile(0.5)
        assert calls["n"] == after_first + 1

    def test_convergence_computed_once(self, report, monkeypatch):
        calls = _count_quantile_calls(monkeypatch)
        conv = report.quantile_convergence(0.95)
        after_first = calls["n"]
        assert after_first == len(report.makespans)
        again = report.quantile_convergence(0.95)
        assert calls["n"] == after_first
        assert again is conv  # answered from the cache, not recomputed
        assert conv[-1] == report.p95 or conv[-1] == pytest.approx(report.p95)

    def test_bubble_attribution_cached_rows(self, report):
        first = report.bubble_attribution()
        second = report.bubble_attribution()
        assert first == second
        assert first is not second  # fresh list each call...
        assert all(a is b for a, b in zip(first, second))  # ...shared rows
        # Mutating a returned list must not poison later calls.
        first.clear()
        assert report.bubble_attribution() == second

    def test_p_properties_share_quantile_cache(self, report, monkeypatch):
        report.p95
        calls = _count_quantile_calls(monkeypatch)
        report.p95
        assert calls["n"] == 0
        assert report.slowdown(0.95) == report.p95 / report.clean_makespan
        assert calls["n"] == 0

    def test_cache_excluded_from_equality(self, problem):
        prof, cluster, plan = problem
        models = (SlowDevice(factor=1.5),)
        a = run_ensemble(prof, cluster, plan, models, range(4))
        b = run_ensemble(prof, cluster, plan, models, range(4))
        a.quantile(0.95)  # warm one report's cache only
        assert a.identical(b)


class TestPrecomputedClean:
    def test_clean_param_skips_clean_evaluation(self, problem):
        prof, cluster, plan = problem
        models = (ComputeJitter(sigma=0.1),)
        clean = evaluate_seed(prof, cluster, plan, (), seed=0)
        for engine in ("batched", "compiled"):
            with_clean = run_ensemble(
                prof, cluster, plan, models, range(4),
                sim_engine=engine, clean=clean,
            )
            without = run_ensemble(
                prof, cluster, plan, models, range(4), sim_engine=engine
            )
            assert with_clean.clean is clean
            assert with_clean.identical(without)

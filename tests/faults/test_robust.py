"""Robust-plan selection tests, including the planner top-K plumbing."""

import pytest

from repro.core import Planner, PlannerConfig, profile_model
from repro.faults import ComputeJitter, SlowDevice, robust_plan
from repro.models import get_model

from tests.faults.test_inject import small_setup


def vgg_setup():
    from repro.cluster import config_b

    prof = profile_model(get_model("vgg19"))
    return prof, config_b(4), 64


class TestPlannerTopK:
    def test_top_plans_off_by_default(self):
        prof, cluster, gbs = vgg_setup()
        assert Planner(prof, cluster, gbs).search().top_plans == []

    def test_top_plans_sorted_distinct_and_include_winner(self):
        prof, cluster, gbs = vgg_setup()
        cfg = PlannerConfig(keep_top_k=4)
        result = Planner(prof, cluster, gbs, cfg).search()
        top = result.top_plans
        assert 1 <= len(top) <= 4
        lats = [lat for lat, _ in top]
        assert lats == sorted(lats)
        keys = [
            (p.notation, p.split_notation, p.num_micro_batches) for _, p in top
        ]
        assert len(set(keys)) == len(keys)
        best = result.plan
        assert (best.notation, best.split_notation, best.num_micro_batches) in keys


class TestRobustPlan:
    MODELS = (SlowDevice(factor=2.0), ComputeJitter(sigma=0.05))

    def test_candidates_sorted_by_quantile(self):
        prof, cluster, gbs = vgg_setup()
        rob = robust_plan(
            prof, cluster, gbs, self.MODELS, range(3), top_k=3
        )
        assert len(rob.candidates) >= 1
        qs = [c.quantile for c in rob.candidates]
        assert qs == sorted(qs)
        assert rob.robust is rob.candidates[0]
        assert rob.clean_optimal.clean == min(c.clean for c in rob.candidates)
        assert rob.selection_changed == (
            rob.robust.notation != rob.clean_optimal.notation
        )

    def test_validation(self):
        prof, cluster, plan = small_setup()
        with pytest.raises(ValueError, match="quantile"):
            robust_plan(prof, cluster, 16, self.MODELS, [0], q=1.5)
        with pytest.raises(ValueError, match="top_k"):
            robust_plan(prof, cluster, 16, self.MODELS, [0], top_k=0)


@pytest.mark.slow
class TestRobustSelectionShift:
    def test_straggler_flips_the_selection_somewhere(self):
        # Acceptance criterion: at least one regime where the p95-robust
        # plan differs from the clean-optimal one.
        from repro.experiments.common import cluster, profile
        from repro.models import PAPER_FIGURES

        models = (SlowDevice(factor=2.0), ComputeJitter(sigma=0.05))
        flipped = []
        for name, cfg in (("gnmt16", "A"), ("gnmt16", "B"), ("vgg19", "A")):
            rob = robust_plan(
                profile(name), cluster(cfg),
                PAPER_FIGURES[name].global_batch_size,
                models, range(8), top_k=4, jobs=None,
            )
            flipped.append(rob.selection_changed)
        assert any(flipped)

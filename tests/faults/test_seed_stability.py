"""Ensemble determinism: identical (graph, models, seeds) must yield an
identical :class:`EnsembleReport` regardless of worker count or simulator
engine (ISSUE 5 satellite).  Anything less would make robust-plan
selection depend on ``--jobs``."""

import pytest

from repro.faults import ComputeJitter, SlowDevice, run_ensemble

from tests.faults.test_inject import small_setup

SEEDS = tuple(range(6))
MODELS = (SlowDevice(factor=1.6, num_devices=1), ComputeJitter(sigma=0.08))


def _report(jobs=1, sim_engine=None):
    prof, cluster, plan = small_setup()
    return run_ensemble(
        prof, cluster, plan, MODELS, seeds=SEEDS,
        jobs=jobs, sim_engine=sim_engine,
    )


class TestSeedStability:
    def test_rerun_is_identical(self):
        assert _report().identical(_report())

    def test_identical_across_job_counts(self):
        serial = _report(jobs=1)
        forked = _report(jobs=2)
        assert serial.identical(forked), (
            "EnsembleReport differs between --jobs 1 and --jobs 2"
        )

    def test_identical_across_sim_engines(self):
        compiled = _report(sim_engine="compiled")
        reference = _report(sim_engine="reference")
        assert compiled.identical(reference), (
            "EnsembleReport differs between compiled and reference engines"
        )

    def test_seed_change_actually_changes_outcomes(self):
        # Guard against identical() passing vacuously: a different seed set
        # must produce different makespans.
        prof, cluster, plan = small_setup()
        a = run_ensemble(prof, cluster, plan, MODELS, seeds=SEEDS)
        b = run_ensemble(prof, cluster, plan, MODELS, seeds=(100, 101, 102))
        assert not a.identical(b)

    def test_identical_is_order_sensitive(self):
        prof, cluster, plan = small_setup()
        a = run_ensemble(prof, cluster, plan, MODELS, seeds=(1, 2, 3))
        b = run_ensemble(prof, cluster, plan, MODELS, seeds=(3, 2, 1))
        assert not a.identical(b)

"""Straggler-sweep experiment: formatting smoke in tier-1, full point slow."""

import math

import pytest

from repro.experiments import straggler_sweep
from repro.experiments.straggler_sweep import StragglerPoint, SystemRobustness


def fake_point(changed=False):
    return StragglerPoint(
        model="bert48",
        config="A",
        factor=1.5,
        systems=(
            SystemRobustness("DAPPLE", "8:5:3", 780.0, 1080.0),
            SystemRobustness("GPipe", "straight", 970.0, 1300.0),
            SystemRobustness("DP", "DP", math.nan, math.nan),
        ),
        robust_plan="8:7:1" if changed else "8:5:3",
        clean_optimal_plan="8:5:3",
        selection_changed=changed,
    )


class TestFormatting:
    def test_tables_and_shift_count(self):
        text = straggler_sweep.format_results([fake_point(), fake_point(True)])
        assert "DAPPLE" in text and "GPipe" in text
        assert "OOM" in text  # NaN rows render as OOM
        assert "selection shifted in 1/2 regimes" in text
        assert "*" in text

    def test_slowdown_property(self):
        s = SystemRobustness("DAPPLE", "8:5:3", 100.0, 140.0)
        assert s.slowdown == pytest.approx(1.4)
        assert math.isnan(SystemRobustness("DP", "DP", math.nan, math.nan).slowdown)


@pytest.mark.slow
class TestPointEndToEnd:
    def test_single_grid_point(self):
        p = straggler_sweep.point("gnmt16", "A", 2.0, num_seeds=8)
        systems = {s.system for s in p.systems}
        assert "DAPPLE" in systems and "DP" in systems
        dapple = next(s for s in p.systems if s.system == "DAPPLE")
        assert dapple.p95_ms > dapple.clean_ms
        assert p.robust_plan and p.clean_optimal_plan

    def test_default_grid_contains_a_shift_regime(self):
        points = straggler_sweep.run(num_seeds=8, jobs=None)
        assert len(points) == (
            len(straggler_sweep.SWEEP_MODELS)
            * len(straggler_sweep.SWEEP_CONFIGS)
            * len(straggler_sweep.SWEEP_FACTORS)
        )
        assert any(p.selection_changed for p in points)
        text = straggler_sweep.format_results(points)
        assert "selection shifted in" in text

"""Integration tests crossing module boundaries."""

import math

import pytest

from repro import plan_and_run
from repro.cluster import config_a, config_b, config_c
from repro.core import Planner, profile_model
from repro.core.latency import evaluate_plan
from repro.core.serialization import load_plan, save_plan
from repro.models import BENCHMARK_MODELS, PAPER_FIGURES, get_model
from repro.runtime import execute_plan


class TestPlanAndRun:
    def test_bert_on_config_a(self):
        res = plan_and_run("bert48", hardware="A", global_batch_size=64)
        assert res.plan.num_devices == 16
        assert res.execution.throughput > 0
        assert res.execution.max_peak_memory() < 16 * 2**30

    def test_default_gbs_from_paper(self):
        res = plan_and_run("resnet50", hardware="B")
        assert res.plan.global_batch_size == PAPER_FIGURES["resnet50"].global_batch_size

    def test_custom_model_requires_gbs(self):
        from repro.models import uniform_model

        m = uniform_model("u", 4, 1e9, 1000, 1e4, profile_batch=2)
        with pytest.raises(ValueError):
            plan_and_run(m, hardware="B")

    def test_custom_cluster_object(self):
        res = plan_and_run("gnmt16", hardware=config_b(4), global_batch_size=256)
        assert res.cluster.num_devices == 4


class TestPlannerExecutorAgreement:
    @pytest.mark.parametrize("name", ["gnmt16", "bert48", "vgg19"])
    def test_planned_latency_close_to_simulated(self, name):
        """The analytical objective tracks the simulator on planner output
        (the paper: the approximation 'works practically very well')."""
        prof = profile_model(get_model(name))
        clu = config_a(2)
        gbs = PAPER_FIGURES[name].global_batch_size
        result = Planner(prof, clu, gbs).search()
        sim = execute_plan(prof, clu, result.plan, warmup_policy="PB")
        ratio = sim.iteration_time / result.estimate.latency
        assert 0.7 < ratio < 1.6, f"{name}: sim/analytic = {ratio:.2f}"

    @pytest.mark.parametrize("cfg", [config_a(2), config_b(16), config_c(16)])
    def test_every_benchmark_plans_and_runs(self, cfg):
        for name in BENCHMARK_MODELS:
            prof = profile_model(get_model(name))
            gbs = PAPER_FIGURES[name].global_batch_size
            plan = Planner(prof, cfg, gbs).search().plan
            res = execute_plan(prof, cfg, plan, warmup_policy="PB")
            assert math.isfinite(res.iteration_time) and res.iteration_time > 0
            # Simulated peak never exceeds device memory (the planner's
            # feasibility filter is sound wrt the executor's accounting).
            for stage in plan.stages:
                for d in stage.devices:
                    assert res.memory.peak(d.resource_key) <= d.spec.memory_bytes


class TestSerializationThroughPlanner:
    def test_search_save_load_execute(self, tmp_path):
        prof = profile_model(get_model("gnmt16"))
        clu = config_a(2)
        plan = Planner(prof, clu, 1024).search().plan
        path = save_plan(plan, tmp_path / "p.json")
        restored = load_plan(path, get_model("gnmt16"), config_a(2))
        a = execute_plan(prof, clu, plan).iteration_time
        b = execute_plan(prof, clu, restored).iteration_time
        assert a == pytest.approx(b)


class TestScheduleInvariantsOnRealModels:
    def test_dapple_memory_bound_holds_in_simulation(self):
        """Simulated peak equals the memory model's closed-form prediction."""
        from repro.runtime.executor import PipelineExecutor
        from repro.core.scheduler import max_resident_micro_batches

        prof = profile_model(get_model("bert48"))
        clu = config_b(2)
        plan = Planner(prof, clu, 32).search().plan
        if plan.num_stages < 2:
            pytest.skip("planner chose DP here")
        ex = PipelineExecutor(prof, clu, plan)
        res = ex.run()
        for i, stage in enumerate(plan.stages):
            k = max_resident_micro_batches(ex.schedule[i])
            predicted = ex.stage_mem[i].peak_bytes(k)
            for d in stage.devices:
                assert res.memory.peak(d.resource_key) <= predicted * 1.001

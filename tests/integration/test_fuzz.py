"""Fuzz tests: random-but-valid inputs through the full runtime stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import config_a, config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.core.scheduler import MicroBatchTask, validate_schedule
from repro.core.serialization import plan_from_dict, plan_to_dict
from repro.models import uniform_model
from repro.runtime import execute_plan


def random_consistent_schedule(rng: np.random.Generator, num_stages: int, m: int):
    """Random 1F1B-style schedules with non-increasing warm-up depths.

    Stage-local causality is *not* enough for global consistency: a stage
    whose early-backward depth is shallower than its downstream stage's can
    form a control/data cycle (see
    ``test_inconsistent_schedule_cycle_detected``).  Non-increasing per-
    stage warm-up counts ``K_0 >= K_1 >= ... >= K_last`` — the structure
    DAPPLE's ``Ki = min(S−i, D)`` guarantees — are always consistent.
    """
    from repro.core.scheduler import _one_f_one_b

    ks = []
    prev = m
    for i in range(num_stages):
        upper = max(1, min(prev, m))
        k = int(rng.integers(1, upper + 1))
        ks.append(k)
        prev = k
    return [_one_f_one_b(m, k) for k in ks]


class TestScheduleFuzz:
    def test_inconsistent_schedule_cycle_detected(self):
        """A schedule that is valid per stage but globally inconsistent
        (upstream drains earlier than downstream) must be rejected as a
        dependency cycle, not silently deadlock."""
        from repro.core import profile_model as _pm

        model = uniform_model("bad", 4, 1e9, 10_000, 1e4, profile_batch=1)
        cluster = config_b(2)
        prof = _pm(model)
        stages = [Stage(0, 2, (cluster.device(0),)), Stage(2, 4, (cluster.device(1),))]
        plan = ParallelPlan(model, stages, 2, 2)
        bad = [
            [MicroBatchTask("F", 0), MicroBatchTask("B", 0),
             MicroBatchTask("F", 1), MicroBatchTask("B", 1)],  # K=1 upstream
            [MicroBatchTask("F", 0), MicroBatchTask("F", 1),
             MicroBatchTask("B", 0), MicroBatchTask("B", 1)],  # K=2 downstream
        ]
        with pytest.raises(ValueError, match="cycle"):
            execute_plan(prof, cluster, plan, schedule=bad)

    @given(
        num_stages=st.integers(min_value=1, max_value=4),
        m=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_valid_schedule_executes_without_deadlock(self, num_stages, m, seed):
        """Every globally-consistent (non-increasing warm-up) schedule
        executes to completion."""
        rng = np.random.default_rng(seed)
        sched = random_consistent_schedule(rng, num_stages, m)
        validate_schedule(sched, m)
        layers = max(num_stages * 2, 4)
        model = uniform_model("fz", layers, 1e9, 10_000, 1e4, profile_batch=1)
        cluster = config_b(num_stages)
        prof = profile_model(model)
        per = layers // num_stages
        stages = [
            Stage(i * per, layers if i == num_stages - 1 else (i + 1) * per,
                  (cluster.device(i),))
            for i in range(num_stages)
        ]
        plan = ParallelPlan(model, stages, m, m)
        res = execute_plan(prof, cluster, plan, schedule=sched)
        assert res.iteration_time > 0
        f_count = sum(1 for e in res.trace.events if e.tags.get("kind") == "F")
        assert f_count == num_stages * m


class TestSerializationFuzz:
    @given(
        layers=st.integers(min_value=2, max_value=20),
        num_stages=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_plan(self, layers, num_stages, seed):
        num_stages = min(num_stages, layers)
        rng = np.random.default_rng(seed)
        model = uniform_model("sz", layers, 1e9, 100, 1e3, profile_batch=1)
        cluster = config_a(2)
        # Random contiguous bounds and disjoint device groups.
        cuts = sorted(rng.choice(np.arange(1, layers), size=num_stages - 1,
                                 replace=False).tolist()) if num_stages > 1 else []
        bounds = [0, *cuts, layers]
        ids = rng.permutation(16)
        sizes = rng.integers(1, 4, size=num_stages)
        stages = []
        cursor = 0
        for k in range(num_stages):
            take = int(sizes[k])
            devs = tuple(cluster.device(int(i)) for i in ids[cursor : cursor + take])
            stages.append(Stage(bounds[k], bounds[k + 1], devs))
            cursor += take
        plan = ParallelPlan(model, stages, 8, 4)
        restored = plan_from_dict(plan_to_dict(plan), model, cluster)
        assert restored.split_positions == plan.split_positions
        assert [d.global_id for s in restored.stages for d in s.devices] == [
            d.global_id for s in plan.stages for d in s.devices
        ]

"""Property-based tests over core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster import config_a, config_b
from repro.cluster.collectives import allreduce_time, ring_allreduce_time
from repro.cluster.topology import LinkSpec
from repro.cluster.transfer import transfer_time
from repro.core import PlannerConfig, Planner, profile_model
from repro.core.latency import evaluate_plan
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.sim import Op, Simulator, TaskGraph


class TestSimulatorProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        width=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_dags_complete_without_resource_overlap(self, n, width, seed):
        rng = np.random.default_rng(seed)
        g = TaskGraph()
        for i in range(n):
            g.add(
                Op(
                    f"op{i}",
                    float(rng.uniform(0.1, 2.0)),
                    resources=(f"gpu:{rng.integers(width)}",),
                    priority=float(rng.integers(5)),
                )
            )
        for i in range(n):
            for j in rng.choice(n, size=min(2, n), replace=False):
                if j > i:
                    g.add_dep(f"op{i}", f"op{j}")
        res = Simulator(g).run()
        assert len(res.trace.events) == n
        # No two ops overlap on the same resource.
        for key in {r for e in res.trace.events for r in e.resources}:
            evs = res.trace.by_resource(key)
            for a, b in zip(evs, evs[1:]):
                assert a.end <= b.start + 1e-12

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_critical_resource_load(self, n, seed):
        rng = np.random.default_rng(seed)
        g = TaskGraph()
        loads: dict[str, float] = {}
        for i in range(n):
            key = f"gpu:{rng.integers(3)}"
            dur = float(rng.uniform(0.1, 1.0))
            loads[key] = loads.get(key, 0.0) + dur
            g.add(Op(f"op{i}", dur, resources=(key,)))
        res = Simulator(g).run()
        assert res.makespan >= max(loads.values()) - 1e-9


class TestCostModelProperties:
    @given(
        nbytes=st.floats(min_value=1.0, max_value=1e10),
        n=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_ring_allreduce_positive_and_bounded(self, nbytes, n):
        link = LinkSpec("t", bandwidth=1e9, latency=1e-5)
        t = ring_allreduce_time(nbytes, n, link)
        assert t > 0
        # Never more than 2x the raw payload time plus latencies.
        assert t <= 2 * nbytes / link.bandwidth + 2 * (n - 1) * link.latency + 1e-12

    @given(
        size_a=st.floats(min_value=1e3, max_value=1e9),
        factor=st.floats(min_value=1.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_allreduce_monotone_in_bytes(self, size_a, factor):
        c = config_a(2)
        t1 = allreduce_time(size_a, c, c.devices)
        t2 = allreduce_time(size_a * factor, c, c.devices)
        assert t2 >= t1

    @given(
        nbytes=st.floats(min_value=1e3, max_value=1e9),
        senders=st.integers(min_value=1, max_value=8),
        receivers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfer_time_positive(self, nbytes, senders, receivers):
        c = config_b(16)
        s = c.devices[:senders]
        r = c.devices[8 : 8 + receivers]
        t = transfer_time(c, nbytes, s, r)
        assert t > 0
        # Lower bound: the busiest NIC must carry at least its fair share.
        assert t >= nbytes / max(senders, 1) / c.inter.bandwidth / 8


class TestPlannerProperties:
    @given(
        layers=st.integers(min_value=2, max_value=12),
        flops=st.floats(min_value=1e8, max_value=1e11),
        params=st.integers(min_value=10_000, max_value=50_000_000),
        act=st.floats(min_value=1e3, max_value=1e8),
        gbs_exp=st.integers(min_value=2, max_value=7),
    )
    @settings(max_examples=25, deadline=None)
    def test_planner_always_returns_valid_plan(self, layers, flops, params, act, gbs_exp):
        model = uniform_model("prop", layers, flops, params, act, profile_batch=2)
        prof = profile_model(model)
        clu = config_b(4)
        gbs = 2**gbs_exp
        try:
            result = Planner(prof, clu, gbs, PlannerConfig(beam_width=8)).search()
        except RuntimeError:
            return  # nothing fits: acceptable outcome
        plan = result.plan
        plan.validate()
        assert plan.num_devices == 4
        assert result.estimate.latency > 0
        # Every returned plan respects the memory filter.
        assert Planner(prof, clu, gbs).plan_fits_memory(plan)

    @given(split=st.integers(min_value=1, max_value=7), m=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_latency_model_vs_simulator_never_wildly_off(self, split, m):
        model = uniform_model("prop2", 8, 9e9, 100_000, 1e6, profile_batch=2)
        prof = profile_model(model)
        clu = config_b(2)
        plan = ParallelPlan(
            model,
            [Stage(0, split, (clu.device(0),)), Stage(split, 8, (clu.device(1),))],
            2 * m,
            m,
        )
        est = evaluate_plan(prof, clu, plan).latency
        sim = execute_plan(prof, clu, plan, warmup_policy="PB").iteration_time
        assert 0.5 < sim / est < 2.0


class TestMemoryModelProperties:
    @given(
        stored=st.floats(min_value=1e5, max_value=1e9),
        m=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_recompute_never_increases_peak(self, stored, m):
        model = uniform_model(
            "mem", 6, 9e9, 1_000_000, stored / 4, stored_bytes=stored, profile_batch=2
        )
        prof = profile_model(model)
        clu = config_b(2)
        plan = ParallelPlan(
            model,
            [Stage(0, 3, (clu.device(0),)), Stage(3, 6, (clu.device(1),))],
            2 * m,
            m,
        )
        try:
            base = execute_plan(prof, clu, plan, recompute=False).max_peak_memory()
        except Exception:
            assume(False)
        rc = execute_plan(prof, clu, plan, recompute=True).max_peak_memory()
        assert rc <= base + 1e-6

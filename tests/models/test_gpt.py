"""Tests for the GPT zoo extension."""

import pytest

from repro.cluster import config_a
from repro.core import Planner, profile_model
from repro.models import get_model, gpt2_medium, gpt2_xl
from repro.models.gpt import gpt_layers


class TestGPTModels:
    def test_gpt2_medium_params(self):
        # GPT-2 Medium is ~355M parameters.
        assert gpt2_medium().total_params == pytest.approx(355e6, rel=0.05)

    def test_gpt2_xl_params(self):
        # GPT-2 XL is ~1.5B parameters.
        assert gpt2_xl().total_params == pytest.approx(1.5e9, rel=0.1)

    def test_registry(self):
        assert get_model("gpt2-medium").name == "GPT2-Medium"
        assert get_model("gpt2-xl").name == "GPT2-XL"

    def test_layer_structure(self):
        g = gpt_layers(12, 768, 12)
        assert g.num_layers == 14  # embedding + 12 blocks + final norm
        assert g.layers[0].name == "embedding"

    def test_gpt2_xl_plannable_and_needs_pipeline(self):
        """1.5B params × 16B/param ≈ 23GB: cannot fit one 16GB V100, so the
        planner must emit a multi-stage plan — the LLM scenario DAPPLE
        anticipates."""
        prof = profile_model(gpt2_xl())
        res = Planner(prof, config_a(2), 16).search()
        assert res.plan.num_stages >= 2
        res.plan.validate()

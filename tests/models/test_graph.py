"""Unit tests for LayerSpec / LayerGraph."""

import numpy as np
import pytest

from repro.models import FP32, LayerGraph, LayerSpec, uniform_model


def spec(name="l", flops=1e9, params=1000, act=1e6, stored=2e6):
    return LayerSpec(
        name=name,
        flops_fwd=flops,
        params=params,
        activation_out_bytes=act,
        stored_bytes=stored,
    )


class TestLayerSpec:
    def test_param_bytes(self):
        assert spec(params=100).param_bytes == 400

    def test_bwd_flops_default_2x(self):
        assert spec(flops=3.0).flops_bwd == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spec(flops=-1)
        with pytest.raises(ValueError):
            spec(act=-1)


class TestLayerGraph:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LayerGraph(name="x", layers=[], profile_batch=1)

    def test_bad_optimizer_rejected(self):
        with pytest.raises(ValueError):
            LayerGraph(name="x", layers=[spec()], profile_batch=1, optimizer="adamw9000")

    def test_bad_profile_batch_rejected(self):
        with pytest.raises(ValueError):
            LayerGraph(name="x", layers=[spec()], profile_batch=0)

    def test_totals(self):
        g = uniform_model("u", 4, flops_per_layer=1e9, params_per_layer=10, activation_bytes=8.0)
        assert g.total_params == 40
        assert g.total_param_bytes == 160
        assert g.total_flops_fwd == pytest.approx(4e9)

    def test_range_queries_match_manual_sums(self):
        layers = [spec(f"l{i}", flops=i * 1e6 + 1, params=i + 1, act=i * 10.0 + 1) for i in range(6)]
        g = LayerGraph(name="x", layers=layers, profile_batch=2)
        lo, hi = 2, 5
        assert g.range_flops_fwd(lo, hi) == pytest.approx(
            sum(l.flops_fwd for l in layers[lo:hi])
        )
        assert g.range_params(lo, hi) == sum(l.params for l in layers[lo:hi])
        assert g.range_flops_bwd(lo, hi) == pytest.approx(
            2 * g.range_flops_fwd(lo, hi)
        )

    def test_invalid_range_rejected(self):
        g = uniform_model("u", 3, 1e9, 1, 1.0)
        for lo, hi in [(-1, 2), (0, 4), (2, 2), (3, 1)]:
            with pytest.raises(IndexError):
                g.range_flops_fwd(lo, hi)

    def test_boundary_activation(self):
        layers = [spec(f"l{i}", act=100.0 * (i + 1)) for i in range(3)]
        g = LayerGraph(name="x", layers=layers, profile_batch=1)
        assert g.boundary_activation_bytes(0) == 0.0
        assert g.boundary_activation_bytes(3) == 0.0
        assert g.boundary_activation_bytes(1) == 100.0
        assert g.boundary_activation_bytes(2) == 200.0
        with pytest.raises(IndexError):
            g.boundary_activation_bytes(4)

    def test_scaled_submodel(self):
        g = uniform_model("u", 10, 1e9, 5, 1.0)
        sub = g.scaled(2, 7)
        assert sub.num_layers == 5
        assert sub.total_params == 25
        assert sub.profile_batch == g.profile_batch

    def test_state_bytes_by_optimizer(self):
        for opt, per in [("adam", 12), ("sgd", 8), ("rmsprop", 8)]:
            g = uniform_model("u", 2, 1e9, 100, 1.0, optimizer=opt)
            assert g.optimizer_state_bytes == 200 * per

    def test_prefix_sums_consistent(self):
        g = uniform_model("u", 8, 2e9, 3, 5.0)
        total = sum(g.range_flops_fwd(i, i + 1) for i in range(8))
        assert total == pytest.approx(g.total_flops_fwd)

"""Calibration tests: the model zoo matches the paper's Tables I & II."""

import pytest

from repro.models import (
    BENCHMARK_MODELS,
    PAPER_FIGURES,
    bert48,
    bert_large,
    bert_layers,
    get_model,
    gnmt16,
    model_names,
    resnet50,
    vgg19,
    xlnet36,
    amoebanet36,
)
from repro.models.graph import FP32


class TestRegistry:
    def test_all_benchmarks_buildable(self):
        for name in BENCHMARK_MODELS:
            g = get_model(name)
            assert g.num_layers > 1
            assert g.total_params > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("alexnet")

    def test_case_insensitive(self):
        assert get_model("BERT48").name == get_model("bert48").name

    def test_names_sorted(self):
        names = model_names()
        assert names == sorted(names)
        assert "bert-large" in names


class TestParamCalibration:
    """Parameter counts within 10 % of the paper's Table II."""

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_params_close_to_paper(self, name):
        g = get_model(name)
        ref = PAPER_FIGURES[name].params
        assert g.total_params == pytest.approx(ref, rel=0.10)

    @pytest.mark.parametrize("name", BENCHMARK_MODELS)
    def test_gradient_bytes_close_to_paper(self, name):
        ref = PAPER_FIGURES[name].gradient_bytes
        if ref is None:
            pytest.skip("not in Table I")
        g = get_model(name)
        assert g.total_param_bytes == pytest.approx(ref, rel=0.15)

    def test_profile_batches_match_table2(self):
        for name in BENCHMARK_MODELS:
            assert get_model(name).profile_batch == PAPER_FIGURES[name].profile_batch


class TestModelShapes:
    def test_bert48_depth(self):
        g = bert48()
        # embedding + 48 encoders + head
        assert g.num_layers == 50
        assert g.layers[0].name == "embedding"
        assert g.layers[-1].name == "head"

    def test_bert_large_is_24_layers(self):
        assert bert_large().num_layers == 26

    def test_bert_scales_linearly(self):
        p48 = bert_layers(48).total_params
        p96 = bert_layers(96).total_params
        per_layer = (p96 - p48) / 48
        assert per_layer == pytest.approx(12.6e6, rel=0.05)

    def test_gnmt_enc_dec_ratio(self):
        g = gnmt16()
        enc = g.layers[2]  # plain encoder layer
        dec = g.layers[10]  # plain decoder layer
        assert dec.flops_fwd / enc.flops_fwd == pytest.approx(1.45, rel=0.01)

    def test_gnmt_even_layer_count_required(self):
        from repro.models.gnmt import gnmt_layers

        with pytest.raises(ValueError):
            gnmt_layers(15)

    def test_vgg_weights_concentrated_at_end(self):
        g = vgg19()
        fc = [l for l in g.layers if l.name.startswith("fc")]
        fc_params = sum(l.params for l in fc)
        # Paper: ~70 % of weights in the fully-connected tail, most in fc6.
        assert fc_params / g.total_params > 0.70
        fc6 = next(l for l in g.layers if l.name == "fc6")
        assert fc6.params / g.total_params > 0.60

    def test_vgg_activations_shrink(self):
        g = vgg19()
        first = g.layers[0].activation_out_bytes
        last_conv = next(l for l in reversed(g.layers) if l.name.startswith("pool"))
        # Paper: 384 MB -> 3 MB at batch 32, i.e. 12 MB -> ~0.1 MB per sample.
        assert first == pytest.approx(12.8e6, rel=0.05)
        assert first / last_conv.activation_out_bytes > 100

    def test_vgg_compute_concentrated_at_front(self):
        g = vgg19()
        conv_flops = sum(l.flops_fwd for l in g.layers if l.name.startswith(("conv", "pool")))
        assert conv_flops / g.total_flops_fwd > 0.95

    def test_resnet_small_params_heavy_compute(self):
        g = resnet50()
        # ~100 MB of gradients (Table V discussion) vs multi-GFLOP compute.
        assert g.total_param_bytes < 0.15e9
        assert g.total_flops_fwd > 5e9

    def test_xlnet_boundary_activation(self):
        g = xlnet36()
        # Two-stream: 2 × 512 × 1024 × 4 B = 4.2 MB/sample (Table I).
        enc = next(l for l in g.layers if l.name.startswith("encoder"))
        assert enc.activation_out_bytes == pytest.approx(4.2e6, rel=0.05)

    def test_amoebanet_param_ramp(self):
        g = amoebanet36()
        cells = [l for l in g.layers if l.name.startswith("cell")]
        assert len(cells) == 36
        last_third = sum(l.params for l in cells[24:])
        # Paper: the last third of the model holds ~73 % of all parameters.
        assert last_third / sum(l.params for l in cells) == pytest.approx(0.73, abs=0.05)

    def test_amoebanet_compute_ramp_within_40pct(self):
        g = amoebanet36()
        cells = [l for l in g.layers if l.name.startswith("cell")]
        ratio = cells[-1].flops_fwd / cells[0].flops_fwd
        assert 1.3 < ratio <= 1.45

    def test_gnmt_boundary_matches_table1(self):
        g = gnmt16()
        enc = g.layers[2]
        # 2 × seq × hidden × 4 B × 64 samples ≈ 26 MB (Table I, round trip
        # counts both directions; one-way at profile batch is ~13 MB).
        assert enc.activation_out_bytes * 64 == pytest.approx(26e6, rel=0.15)

"""Shared fixtures: every obs test starts and ends with a clean registry."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()

"""Trace context: installation, propagation, uid minting, header codec."""

import threading

import pytest

import repro.obs as obs
from repro.obs import context


class TestTraceContext:
    def test_round_trips_through_dict(self):
        ctx = context.TraceContext("abc123", "7", {"k": "v"})
        back = context.TraceContext.from_dict(ctx.to_dict())
        assert back.trace_id == "abc123"
        assert back.span_id == "7"
        assert back.baggage == {"k": "v"}

    def test_from_dict_rejects_contextless(self):
        assert context.TraceContext.from_dict(None) is None
        assert context.TraceContext.from_dict({}) is None

    def test_current_defaults_to_none(self):
        assert context.current() is None

    def test_use_installs_and_restores(self):
        ctx = context.TraceContext("t1")
        with context.use(ctx):
            assert context.current() is ctx
            inner = context.TraceContext("t2")
            with context.use(inner):
                assert context.current() is inner
            assert context.current() is ctx
        assert context.current() is None

    def test_use_none_is_noop(self):
        with context.use(None):
            assert context.current() is None

    def test_context_is_thread_local(self):
        seen = []
        with context.use(context.TraceContext("t1")):
            t = threading.Thread(target=lambda: seen.append(context.current()))
            t.start()
            t.join()
        assert seen == [None]


class TestSpanStamping:
    def test_spans_untouched_without_context(self):
        obs.enable()
        with obs.span("sim.run"):
            pass
        (rec,) = obs.tracer().spans()
        assert rec.trace_id is None
        assert rec.uid is None
        assert rec.parent_uid is None

    def test_start_trace_stamps_and_links(self):
        obs.enable()
        with obs.start_trace("client.submit") as root:
            trace_id = context.current().trace_id
            with obs.span("planner.search"):
                pass
        recs = {r.name: r for r in obs.tracer().spans()}
        assert recs["client.submit"].trace_id == trace_id
        assert recs["client.submit"].parent_uid is None
        assert recs["planner.search"].trace_id == trace_id
        assert recs["planner.search"].parent_uid == recs["client.submit"].uid
        assert root.uid == recs["client.submit"].uid

    def test_context_parent_used_when_no_open_span(self):
        obs.enable()
        with context.use(context.TraceContext("t1", span_id="remote.9")):
            with obs.span("serve.job"):
                pass
        (rec,) = obs.tracer().spans()
        assert rec.trace_id == "t1"
        assert rec.parent_uid == "remote.9"

    def test_snapshot_parents_at_innermost_open_span(self):
        obs.enable()
        with obs.start_trace("serve.request") as sp:
            snap = context.snapshot()
        assert snap["trace_id"] == sp.trace_id
        assert snap["span_id"] == sp.uid
        assert snap["obs_enabled"] is True

    def test_snapshot_none_without_context(self):
        assert context.snapshot() is None


class TestUids:
    def test_root_process_uids_are_bare_seqs(self):
        assert context.make_uid(17) == "17"

    def test_new_trace_ids_are_unique_hex(self):
        a, b = context.new_trace_id(), context.new_trace_id()
        assert a != b
        assert len(a) == 32
        int(a, 16)  # must parse as hex


class TestHeaders:
    def test_header_round_trip(self):
        snap = {"trace_id": "deadbeef", "span_id": "3",
                "baggage": {"req": "r-1"}}
        headers = context.to_headers(snap)
        assert headers[context.TRACE_HEADER] == "deadbeef"
        assert headers[context.PARENT_HEADER] == "3"
        ctx = context.from_headers(headers)
        assert ctx.trace_id == "deadbeef"
        assert ctx.span_id == "3"
        assert ctx.baggage == {"req": "r-1"}

    def test_no_context_means_no_headers(self):
        assert context.to_headers(None) == {}

    def test_absent_headers_mean_no_context(self):
        assert context.from_headers({}) is None

    def test_garbled_baggage_is_dropped_not_fatal(self):
        ctx = context.from_headers({
            context.TRACE_HEADER: "abc",
            context.BAGGAGE_HEADER: "{not json",
        })
        assert ctx.trace_id == "abc"
        assert ctx.baggage == {}

    def test_oversized_trace_header_rejected(self):
        headers = {context.TRACE_HEADER: "x" * 1000}
        assert context.from_headers(headers) is None


class TestRunCaptured:
    """In-process exercise of the worker-side capture path (the real
    cross-process run is covered by tests/obs/test_fork_obs.py)."""

    def test_result_and_telemetry_round_trip(self):
        obs.enable()

        def work(x):
            with obs.span("sim.run"):
                obs.counter("sim.events", kind="op").inc(3)
            return x * 2

        snap = {"trace_id": "t-1", "span_id": "0", "baggage": {},
                "obs_enabled": True}
        payload = context.run_captured(snap, work, 21)
        assert payload["result"] == 42
        spans = payload["telemetry"]["spans"]
        assert [s["name"] for s in spans] == ["sim.run"]
        assert spans[0]["trace_id"] == "t-1"
        assert spans[0]["parent_uid"] == "0"
        metrics = payload["telemetry"]["metrics"]
        assert metrics == [{"type": "counter", "name": "sim.events",
                            "labels": {"kind": "op"}, "value": 3}]
        # the captured spans were drained from the local tracer...
        assert [r.name for r in obs.tracer().spans()] == []
        # ...and ingest puts them (plus the metrics) back
        result = context.ingest_payload(payload)
        assert result == 42
        (rec,) = obs.tracer().spans()
        assert rec.name == "sim.run"
        assert rec.trace_id == "t-1"
        assert obs.registry().counter("sim.events", kind="op").value == 3

    def test_ingest_passthrough_for_plain_values(self):
        assert context.ingest_payload({"result": 1}) == {"result": 1}
        assert context.ingest_payload(41) == 41

    def test_exceptions_propagate(self):
        obs.enable()

        def boom():
            raise RuntimeError("nope")

        snap = {"trace_id": "t", "span_id": None, "baggage": {},
                "obs_enabled": True}
        with pytest.raises(RuntimeError, match="nope"):
            context.run_captured(snap, boom)
        # registry was restored even on failure
        assert obs.registry() is not None

    def test_disabled_context_keeps_obs_off(self):
        snap = {"trace_id": "t", "span_id": None, "baggage": {},
                "obs_enabled": False}
        payload = context.run_captured(snap, lambda: 7)
        assert payload["result"] == 7
        assert payload["telemetry"] is None
        assert not obs.enabled()

"""explain_plan must reproduce the latency model's Tw/Ts/Te bit-for-bit."""

import pytest

from repro.cluster import config_a, config_b
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.latency import _running_prefix, evaluate_plan
from repro.models import get_model
from repro.obs import breakdown_plan, explain_plan


@pytest.fixture(scope="module")
def searched():
    """A live planner run with runners-up kept (GNMT on config A)."""
    prof = profile_model(get_model("gnmt16"))
    cluster = config_a(8)
    result = Planner(prof, cluster, 64, PlannerConfig(keep_top_k=4)).search()
    return prof, cluster, result


class TestBreakdownExactness:
    def test_winner_decomposition_is_bit_exact(self, searched):
        prof, cluster, result = searched
        bd = breakdown_plan(prof, cluster, result.plan)
        est = evaluate_plan(prof, cluster, result.plan)
        # Same accumulation order as the latency model: prefix-summed
        # warm-up, plain-summed steady, max-reduced ending.
        warmup = _running_prefix([r.warmup_contrib for r in bd.rows])[-1]
        assert warmup == est.warmup
        assert sum(r.steady_contrib for r in bd.rows) == est.steady
        assert max(r.ending_term for r in bd.rows) == est.ending
        assert est.warmup + est.steady + est.ending == est.latency

    def test_every_top_plan_decomposes_exactly(self, searched):
        """verify() (called inside breakdown_plan) asserts bit-exactness for
        the winner and every runner-up the search kept."""
        prof, cluster, result = searched
        for _lat, plan in result.top_plans:
            breakdown_plan(prof, cluster, plan)

    def test_pipeline_plan_marks_pivot_and_gate(self):
        prof = profile_model(get_model("bert48"))
        cluster = config_b(4)
        result = Planner(
            prof, cluster, 64, PlannerConfig(min_stages=2)
        ).search()
        bd = breakdown_plan(prof, cluster, result.plan)
        assert bd.mode in ("pipeline", "interleaved")
        assert sum(1 for r in bd.rows if r.is_pivot) == 1
        assert any(r.gates_ending for r in bd.rows)
        pivot_row = next(r for r in bd.rows if r.is_pivot)
        assert pivot_row.ext_index == bd.pivot
        # Warm-up is attributed to stages up to and including the pivot.
        for r in bd.rows:
            if r.ext_index <= bd.pivot:
                assert r.warmup_contrib == r.fwd
            else:
                assert r.warmup_contrib == 0.0

    def test_dp_overlap_mode_detected(self, searched):
        prof, cluster, result = searched
        from repro.core.plan import single_stage_plan

        dp = single_stage_plan(prof.graph, cluster.devices, 64, 1)
        bd = breakdown_plan(prof, cluster, dp)
        assert bd.mode == "dp-overlap"
        assert len([r for r in bd.rows if r.kind == "comp"]) == 1


class TestExplanation:
    def test_explains_planner_result_with_runners_up(self, searched):
        prof, cluster, result = searched
        expl = explain_plan(prof, cluster, result)
        assert expl.winner.notation == result.plan.notation
        assert expl.winner.latency == result.estimate.latency
        # keep_top_k=4 retains the winner plus at least one alternative.
        assert len(expl.runners_up) >= 1
        for ru in expl.runners_up:
            assert ru.latency >= expl.winner.latency

    def test_accepts_bare_plan(self, searched):
        prof, cluster, result = searched
        expl = explain_plan(prof, cluster, result.plan)
        assert expl.runners_up == ()

    def test_report_renders_decomposition_tables(self, searched):
        prof, cluster, result = searched
        text = explain_plan(prof, cluster, result).report()
        assert "winner:" in text
        assert "L = Tw + Ts + Te" in text
        assert "per-extended-stage decomposition" in text
        assert "runners-up" in text

"""Prometheus exposition, the shared percentile, rolling SLO windows."""

import pytest

from repro.obs.export import (
    PROM_CONTENT_TYPE,
    RollingWindow,
    SloTracker,
    parse_prometheus,
    percentile_sorted,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_namespace(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests", route="GET /healthz").inc(5)
        text = render_prometheus(reg)
        assert "# TYPE repro_serve_requests_total counter" in text
        assert ('repro_serve_requests_total{route="GET /healthz"} 5'
                in text)

    def test_gauge_renders_plain_value(self):
        reg = MetricsRegistry()
        reg.gauge("serve.queue_depth").set(3)
        text = render_prometheus(reg)
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text.splitlines()

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("serve.request_ms", buckets=[1.0, 10.0])
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert 'repro_serve_request_ms_bucket{le="1"} 2' in lines
        assert 'repro_serve_request_ms_bucket{le="10"} 3' in lines
        assert 'repro_serve_request_ms_bucket{le="+Inf"} 4' in lines
        assert "repro_serve_request_ms_count 4" in lines
        assert "repro_serve_request_ms_sum 56.2" in lines

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", note='say "hi"\nbye').inc()
        text = render_prometheus(reg)
        assert 'note="say \\"hi\\"\\nbye"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_content_type_is_prometheus_text(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestParsePrometheus:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests", route="POST /v1/plans").inc(7)
        reg.gauge("serve.in_flight").set(2)
        reg.histogram("serve.exec_ms", buckets=[1.0]).observe(0.5)
        parsed = parse_prometheus(render_prometheus(reg))
        assert parsed[("repro_serve_requests_total",
                       (("route", "POST /v1/plans"),))] == 7
        assert parsed[("repro_serve_in_flight", ())] == 2
        assert parsed[("repro_serve_exec_ms_bucket", (("le", "1"),))] == 1
        assert parsed[("repro_serve_exec_ms_count", ())] == 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not exposition")


class TestPercentileSorted:
    def test_matches_linear_interpolation(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert percentile_sorted(xs, 0.0) == 1.0
        assert percentile_sorted(xs, 1.0) == 4.0
        assert percentile_sorted(xs, 0.5) == 2.5
        assert percentile_sorted(xs, 0.25) == 1.75

    def test_single_element(self):
        assert percentile_sorted([7.0], 0.95) == 7.0

    def test_agrees_with_numpy(self):
        np = pytest.importorskip("numpy")
        xs = sorted([3.5, 1.25, 9.0, 0.5, 4.0, 4.0, 2.0])
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert percentile_sorted(xs, q) == pytest.approx(
                float(np.percentile(xs, q * 100)), abs=1e-12
            )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_sorted([], 0.5)


class TestRollingWindow:
    def test_bounded_capacity_keeps_most_recent(self):
        w = RollingWindow(capacity=3)
        for i in range(5):
            w.record(float(i))
        s = w.summary()
        assert s["count"] == 3
        assert s["max_ms"] == 4.0
        assert s["p50_ms"] == 3.0  # window holds [2, 3, 4]

    def test_error_rate_counts_5xx_only(self):
        w = RollingWindow(capacity=8)
        w.record(1.0, 200)
        w.record(1.0, 404)
        w.record(1.0, 500)
        w.record(1.0, 503)
        s = w.summary()
        assert s["error_count"] == 2
        assert s["error_rate"] == 0.5

    def test_empty_summary_is_nulls(self):
        s = RollingWindow().summary()
        assert s["count"] == 0
        assert s["p50_ms"] is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RollingWindow(capacity=0)


class TestSloTracker:
    def test_per_route_and_aggregate(self):
        slo = SloTracker(capacity=16)
        slo.record("POST /v1/plans", 202, 10.0)
        slo.record("GET /healthz", 200, 1.0)
        slo.record("POST /v1/plans", 500, 30.0)
        summary = slo.summary()
        assert summary["all"]["count"] == 3
        assert summary["POST /v1/plans"]["count"] == 2
        assert summary["POST /v1/plans"]["error_count"] == 1
        assert summary["GET /healthz"]["error_count"] == 0

    def test_single_route_summary(self):
        slo = SloTracker()
        slo.record("r", 200, 5.0)
        assert slo.summary("r")["count"] == 1
        assert slo.summary("missing")["count"] == 0

    def test_empty_tracker_still_reports_all(self):
        assert SloTracker().summary()["all"]["count"] == 0

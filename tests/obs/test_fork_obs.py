"""Fork-safety of the obs registry (satellite: cross-process aggregation).

Spawns a real :class:`~repro.perf.sweep.ForkPool`, emits spans and metrics
inside child processes under an installed trace context, and asserts the
parent-side aggregation sees correctly-labeled, trace-correlated events
with no duplicated seq ids.  Skips (via inline degradation) are impossible
to hide: the test asserts which pid actually emitted the child spans.
"""

import os

import pytest

import repro.obs as obs
from repro.obs import context
from repro.perf.sweep import ForkPool


def _child_work(tag: str, n: int) -> dict:
    """Runs in the pool worker: emit one span tree + labeled metrics."""
    with obs.span("sim.run", tag=tag):
        with obs.span("planner.search", tag=tag):
            obs.counter("planner.scored", tag=tag).inc(n)
        obs.histogram("sim.step_ms", tag=tag).observe(1.5)
    return {"pid": os.getpid(), "tag": tag}


@pytest.fixture()
def fork_pool():
    pool = ForkPool(2)
    yield pool
    pool.shutdown()


class TestForkObsAggregation:
    def test_child_telemetry_lands_in_parent(self, fork_pool):
        obs.enable()
        with obs.start_trace("perf.sweep") as root:
            trace_id = context.current().trace_id
            out = fork_pool.run(_child_work, "a", 3)
        if fork_pool.mode == "inline":
            pytest.skip("platform cannot fork process pools")
        assert out["pid"] != os.getpid()

        spans = obs.tracer().spans()
        by_name = {r.name: r for r in spans}
        assert set(by_name) == {"perf.sweep", "sim.run", "planner.search"}

        # Trace-correlated: every span shares the request's trace id and
        # the child's root chains to the parent's open span.
        assert all(r.trace_id == trace_id for r in spans)
        assert by_name["sim.run"].parent_uid == root.uid
        assert by_name["planner.search"].parent_uid == by_name["sim.run"].uid

        # The child spans keep the child's pid and prefixed uids.
        child_pid = out["pid"]
        assert by_name["sim.run"].pid == child_pid
        assert by_name["sim.run"].uid.startswith(f"{child_pid:x}.")

        # Correctly-labeled metrics merged into the parent registry.
        assert obs.registry().counter("planner.scored", tag="a").value == 3
        h = obs.registry().histogram("sim.step_ms", tag="a")
        assert h.count == 1
        assert h.min == h.max == 1.5

    def test_no_duplicated_seq_ids_across_many_calls(self, fork_pool):
        obs.enable()
        with obs.start_trace("perf.sweep"):
            results = [fork_pool.run(_child_work, f"t{i}", i) for i in range(4)]
        if fork_pool.mode == "inline":
            pytest.skip("platform cannot fork process pools")
        assert all(r["pid"] != os.getpid() for r in results)
        spans = obs.tracer().spans()
        seqs = [r.seq for r in spans]
        assert len(seqs) == len(set(seqs)), "parent seq ids must be unique"
        uids = [r.uid for r in spans]
        assert len(uids) == len(set(uids)), "span uids must be unique"
        # one sim.run + one planner.search per call, properly labeled
        tags = sorted(r.attrs["tag"] for r in spans if r.name == "sim.run")
        assert tags == ["t0", "t1", "t2", "t3"]
        for i in range(4):
            assert obs.registry().counter(
                "planner.scored", tag=f"t{i}"
            ).value == i

    def test_metrics_accumulate_across_calls(self, fork_pool):
        obs.enable()
        with obs.start_trace("perf.sweep"):
            fork_pool.run(_child_work, "same", 2)
            fork_pool.run(_child_work, "same", 5)
        if fork_pool.mode == "inline":
            pytest.skip("platform cannot fork process pools")
        assert obs.registry().counter("planner.scored", tag="same").value == 7
        assert obs.registry().histogram("sim.step_ms", tag="same").count == 2

    def test_without_context_pool_run_is_unwrapped(self, fork_pool):
        obs.enable()
        out = fork_pool.run(_child_work, "bare", 1)
        if fork_pool.mode == "inline":
            pytest.skip("platform cannot fork process pools")
        # No context on the submitting thread: no capture wrapper, so the
        # child's telemetry stays in the child and the result is the plain
        # return value.
        assert out["tag"] == "bare"
        assert obs.tracer().spans() == []

    def test_inline_mode_traces_in_process(self):
        pool = ForkPool(1, inline=True)
        obs.enable()
        with obs.start_trace("perf.sweep") as root:
            trace_id = context.current().trace_id
            out = pool.run(_child_work, "inl", 1)
        assert out["pid"] == os.getpid()
        by_name = {r.name: r for r in obs.tracer().spans()}
        assert by_name["sim.run"].trace_id == trace_id
        assert by_name["sim.run"].parent_uid == root.uid
        # same-process uids carry no pid prefix
        assert "." not in by_name["sim.run"].uid

"""Cross-layer instrumentation: planner, simulator, and faults publish the
right spans and metrics when observability is on — and nothing when off."""

import pytest

import repro.obs as obs
from repro.cluster import config_b
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model, uniform_model
from repro.runtime import execute_plan


@pytest.fixture()
def small_problem():
    model = uniform_model("obs", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
    cluster = config_b(2)
    return profile_model(model), cluster


class TestPlannerMetrics:
    def test_search_span_and_counters(self, small_problem):
        prof, cluster = small_problem
        obs.enable()
        result = Planner(prof, cluster, 16).search()
        names = [r.name for r in obs.tracer().spans()]
        assert "planner.search" in names
        reg = obs.registry()
        assert reg.counter("planner.plans_evaluated").value == result.plans_evaluated
        assert reg.counter("planner.states_expanded").value == result.states_explored
        assert reg.counter("planner.infeasible_plans").value == result.infeasible_plans

    def test_per_split_repl_scoring_counts_match_scalar_path(self, small_problem):
        """The fast-scan path counts candidate scorings analytically (one
        outer product per state); the scalar path counts one by one.  Both
        must agree series-for-series."""
        prof, cluster = small_problem

        def counts(use_fast_scan):
            obs.enable(reset_state=True)
            Planner(
                prof, cluster, 16, PlannerConfig(use_fast_scan=use_fast_scan)
            ).search()
            return {
                (m.labels, m.value)
                for m in obs.registry().snapshot()
                if m.name == "planner.scored"
            }

        fast = counts(True)
        scalar = counts(False)
        assert fast == scalar
        assert fast  # non-empty: the search did score candidates

    def test_search_records_nothing_when_disabled(self, small_problem):
        prof, cluster = small_problem
        Planner(prof, cluster, 16).search()
        assert len(obs.tracer()) == 0
        assert len(obs.registry()) == 0


class TestSimulatorMetrics:
    def _run(self, prof, cluster, engine):
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        return execute_plan(prof, cluster, plan, sim_engine=engine)

    def test_run_publishes_events_occupancy_memory(self, small_problem):
        prof, cluster = small_problem
        obs.enable()
        res = self._run(prof, cluster, "compiled")
        reg = obs.registry()
        assert reg.counter("sim.events").value == sum(
            1 for _ in res.trace.iter_rows()
        )
        occ = reg.gauge("sim.occupancy", resource="gpu:0").value
        assert 0.0 < occ <= 1.0
        peak = reg.gauge("sim.memory_peak_bytes", device="gpu:0").value
        assert peak == res.memory.peak("gpu:0")
        names = [r.name for r in obs.tracer().spans()]
        assert "sim.run" in names
        assert "runtime.build_graph" in names
        assert "runtime.execute" in names

    def test_compiled_engine_records_queue_histograms(self, small_problem):
        prof, cluster = small_problem
        obs.enable()
        self._run(prof, cluster, "compiled")
        h = obs.registry().histogram("sim.completion_batch")
        assert h.count > 0

    def test_instrumented_run_is_bit_identical_to_untraced(self, small_problem):
        """Turning tracing on must not change simulation results."""
        prof, cluster = small_problem
        clean = self._run(prof, cluster, "compiled")
        obs.enable()
        traced = self._run(prof, cluster, "compiled")
        assert traced.iteration_time == clean.iteration_time
        assert list(traced.trace.iter_rows()) == list(clean.trace.iter_rows())


class TestFaultsMetrics:
    def test_ensemble_publishes_timing_and_convergence(self, small_problem):
        from repro.faults import ComputeJitter, run_ensemble

        prof, cluster = small_problem
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        obs.enable()
        rep = run_ensemble(
            prof, cluster, plan, (ComputeJitter(sigma=0.1),), range(4)
        )
        reg = obs.registry()
        assert reg.counter("faults.seeds_evaluated").value == 4
        assert (
            reg.gauge("faults.ensemble_seconds", plan=plan.notation).value > 0
        )
        assert reg.histogram("faults.seed_slowdown").count == 4
        delta = reg.gauge(
            "faults.quantile_convergence_delta", plan=plan.notation
        ).value
        conv = rep.quantile_convergence(0.95)
        assert delta == pytest.approx(abs(float(conv[-1]) - float(conv[-2])))
        names = [r.name for r in obs.tracer().spans()]
        assert "faults.run_ensemble" in names
        # Default engine is batched: the whole ensemble (clean row + 4
        # seeds) is one multi-scenario pass, no per-seed spans.
        assert "sim.run_batched" in names
        assert names.count("faults.seed") == 0

    def test_per_seed_engine_publishes_seed_spans(self, small_problem):
        from repro.faults import ComputeJitter, run_ensemble

        prof, cluster = small_problem
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        obs.enable()
        run_ensemble(
            prof, cluster, plan, (ComputeJitter(sigma=0.1),), range(4),
            sim_engine="compiled",
        )
        assert obs.registry().counter("faults.seeds_evaluated").value == 4
        names = [r.name for r in obs.tracer().spans()]
        assert "faults.run_ensemble" in names
        assert names.count("faults.seed") == 5  # clean + 4 seeds
        assert "perf.sweep" in names

    def test_quantile_convergence_shape(self, small_problem):
        from repro.faults import ComputeJitter, run_ensemble

        prof, cluster = small_problem
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        rep = run_ensemble(
            prof, cluster, plan, (ComputeJitter(sigma=0.1),), range(5)
        )
        conv = rep.quantile_convergence(0.95)
        assert len(conv) == 5
        assert conv[-1] == pytest.approx(rep.p95)

"""Tests for the metrics registry: interning, histograms, no-op path."""

import pytest

import repro.obs as obs
from repro.obs.metrics import (
    NOOP_COUNTER,
    Histogram,
    MetricsRegistry,
)


class TestDisabledPath:
    def test_metrics_are_shared_noops(self):
        assert obs.counter("c") is NOOP_COUNTER
        obs.counter("c").inc()
        obs.gauge("g").set(3)
        obs.histogram("h").observe(1.0)
        assert len(obs.registry()) == 0


class TestCounterGauge:
    def test_counter_accumulates(self):
        obs.enable()
        obs.counter("evts").inc()
        obs.counter("evts").inc(4)
        assert obs.counter("evts").value == 5

    def test_counter_rejects_negative(self):
        obs.enable()
        with pytest.raises(ValueError):
            obs.counter("evts").inc(-1)

    def test_gauge_set_and_add(self):
        obs.enable()
        g = obs.gauge("depth")
        g.set(2.5)
        g.add(0.5)
        assert g.value == 3.0

    def test_labels_create_distinct_series(self):
        obs.enable()
        obs.counter("scored", split=1, repl=2).inc()
        obs.counter("scored", split=1, repl=3).inc(10)
        assert obs.counter("scored", split=1, repl=2).value == 1
        assert obs.counter("scored", split=1, repl=3).value == 10

    def test_label_order_does_not_matter(self):
        obs.enable()
        a = obs.counter("scored", split=1, repl=2)
        b = obs.counter("scored", repl=2, split=1)
        assert a is b

    def test_kind_mismatch_raises(self):
        obs.enable()
        obs.counter("m")
        with pytest.raises(TypeError):
            obs.gauge("m")


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx((0.5 + 0.7 + 5.0 + 100.0) / 4)

    def test_percentiles_are_clamped_and_monotonic(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0, 10.0))
        for v in (0.5, 1.5, 1.6, 3.0, 8.0):
            h.observe(v)
        ps = [h.percentile(p) for p in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)]
        assert ps == sorted(ps)
        assert all(h.min <= x <= h.max for x in ps)

    def test_single_value_percentiles_collapse(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.5)
        assert h.percentile(0.5) == 1.5
        assert h.percentile(0.99) == 1.5

    def test_empty_percentile_is_zero(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.percentile(0.5) == 0.0

    def test_out_of_range_percentile_rejected(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_snapshot_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a")
        reg.histogram("m", buckets=(1.0,))
        names = [m.name for m in reg.snapshot()]
        assert names == ["a", "m", "z"]
        assert len(reg) == 3

    def test_metric_generic_accessor(self):
        obs.enable()
        assert obs.metric("c").kind == "counter"
        assert obs.metric("g", kind="gauge").kind == "gauge"
        assert obs.metric("h", kind="histogram").kind == "histogram"
        with pytest.raises(ValueError):
            obs.metric("x", kind="summary")

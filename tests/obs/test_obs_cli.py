"""``repro obs`` CLI family: tail, summarize, top."""

import json

import pytest

import repro.obs as obs
from repro import cli
from repro.obs import console
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import write_jsonl


@pytest.fixture()
def jsonl(tmp_path):
    """A small traced log: two trace trees plus one counter."""
    obs.enable()
    with obs.start_trace("serve.request") as first:
        with obs.span("planner.search", route="POST /v1/plans"):
            obs.counter("serve.requests").inc()
    with obs.start_trace("serve.request"):
        with obs.span("sim.run"):
            pass
    path = write_jsonl(tmp_path / "obs.jsonl")
    return path, first.trace_id


class TestObsTail:
    def test_tail_prints_one_line_per_event(self, jsonl, capsys):
        path, _trace = jsonl
        assert cli.main(["obs", "tail", str(path)]) == 0
        out = capsys.readouterr().out.splitlines()
        with open(path) as fh:
            n_records = sum(1 for _ in fh)
        assert len(out) == n_records
        assert any("planner.search" in line for line in out)
        assert any("counter" in line for line in out)

    def test_tail_filters_by_span_name(self, jsonl, capsys):
        path, _trace = jsonl
        assert cli.main(["obs", "tail", str(path), "--name", "sim."]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out
        assert all("sim.run" in line for line in out)

    def test_tail_filters_by_trace_prefix(self, jsonl, capsys):
        path, trace_id = jsonl
        rc = cli.main(["obs", "tail", str(path), "--trace", trace_id[:8]])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        # only the first trace's two spans survive the filter
        assert len(out) == 2
        assert any("planner.search" in line for line in out)
        assert not any("sim.run" in line for line in out)

    def test_tail_limit(self, jsonl, capsys):
        path, _trace = jsonl
        assert cli.main(["obs", "tail", str(path), "--limit", "1"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 1

    def test_tail_missing_file_is_exit_2(self, tmp_path, capsys):
        rc = cli.main(["obs", "tail", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err


class TestObsSummarize:
    def test_summarize_renders_latency_table(self, jsonl, capsys):
        path, _trace = jsonl
        assert cli.main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "planner.search" in out
        assert "p95_ms" in out

    def test_summarize_json_rows(self, jsonl, capsys):
        path, _trace = jsonl
        assert cli.main(["obs", "summarize", str(path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert by_name["serve.request"]["count"] == 2
        assert by_name["sim.run"]["count"] == 1
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "total_ms"):
            assert key in by_name["sim.run"]

    def test_summarize_attr_filter(self, jsonl, capsys):
        path, _trace = jsonl
        rc = cli.main([
            "obs", "summarize", str(path), "--json",
            "--attr", "route=POST /v1/plans",
        ])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in rows] == ["planner.search"]

    def test_summarize_bad_attr_is_exit_2(self, jsonl, capsys):
        path, _trace = jsonl
        rc = cli.main(["obs", "summarize", str(path), "--attr", "noequals"])
        assert rc == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_summarize_missing_file_is_exit_2(self, tmp_path, capsys):
        rc = cli.main(["obs", "summarize", str(tmp_path / "nope.jsonl")])
        assert rc == 2


class TestObsTop:
    def _metrics_text(self):
        reg = MetricsRegistry()
        reg.gauge("serve.queue_depth").set(1.0)
        reg.gauge("serve.queue_capacity").set(8.0)
        reg.gauge("serve.in_flight").set(2.0)
        reg.gauge("serve.ready").set(1.0)
        reg.gauge("serve.workers_busy").set(1.0)
        reg.gauge("serve.worker_utilization").set(0.5)
        reg.gauge("serve.cache_hit_rate").set(0.25)
        route = "POST /v1/plans"
        reg.gauge("serve.slo_requests", route=route).set(4.0)
        reg.gauge("serve.slo_error_rate", route=route).set(0.25)
        reg.gauge("serve.slo_p50_ms", route=route).set(12.5)
        reg.gauge("serve.slo_p95_ms", route=route).set(40.0)
        reg.gauge("serve.slo_p99_ms", route=route).set(55.0)
        return render_prometheus(reg)

    def test_top_renders_dashboard_once(self, monkeypatch, capsys):
        text = self._metrics_text()
        calls = []

        def fake_fetch(url, timeout=5.0):
            calls.append(url)
            return text

        monkeypatch.setattr(console, "fetch_metrics", fake_fetch)
        rc = cli.main([
            "obs", "top", "--url", "http://x:1", "--iterations", "1",
            "--no-clear",
        ])
        assert rc == 0
        assert calls == ["http://x:1"]
        out = capsys.readouterr().out
        assert "depth 1/8" in out
        assert "utilization 50%" in out
        assert "POST /v1/plans" in out
        assert "12.50" in out  # p50 column

    def test_top_unreachable_server_is_exit_1(self, capsys):
        # nothing listens on this port; urllib raises OSError
        rc = cli.main([
            "obs", "top", "--url", "http://127.0.0.1:9",
            "--iterations", "1", "--timeout", "0.2",
        ])
        assert rc == 1
        assert "cannot scrape" in capsys.readouterr().err

    def test_render_dashboard_handles_empty_exposition(self):
        out = console.render_dashboard("", url="http://x")
        assert "queue" in out
        assert "-" in out  # absent series render as dashes

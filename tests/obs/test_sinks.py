"""Tests for the JSONL / console / Perfetto sinks and the event schema."""

import json

import pytest

import repro.obs as obs
from repro.obs.schema import SchemaError, validate_event, validate_jsonl
from repro.obs.sinks import OBS_PID, SIM_PID


def _record_some_activity():
    with obs.span("phase.outer", model="m"):
        with obs.span("phase.inner"):
            pass
    obs.counter("events", kind="F").inc(3)
    obs.gauge("occupancy", resource="gpu:0").set(0.75)
    h = obs.histogram("latency", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)


class TestJsonl:
    def test_export_validates_against_schema(self, tmp_path):
        obs.enable()
        _record_some_activity()
        path = obs.export_jsonl(tmp_path / "log.jsonl")
        # 1 meta + 2 spans + 3 metrics
        assert validate_jsonl(path) == 6

    def test_first_record_is_meta_header(self, tmp_path):
        obs.enable()
        _record_some_activity()
        path = obs.export_jsonl(tmp_path / "log.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"
        assert first["tool"] == "repro.obs"

    def test_deterministic_export_is_byte_identical(self, tmp_path):
        """include_wall=False nulls every clock field, so two identical
        instrumented runs produce byte-identical logs."""
        obs.enable(reset_state=True)
        _record_some_activity()
        a = (tmp_path / "a.jsonl")
        obs.export_jsonl(a, include_wall=False)

        obs.enable(reset_state=True)
        _record_some_activity()
        b = (tmp_path / "b.jsonl")
        obs.export_jsonl(b, include_wall=False)

        assert a.read_bytes() == b.read_bytes()
        assert validate_jsonl(a) == validate_jsonl(b)

    def test_wall_clock_fields_nulled_when_deterministic(self, tmp_path):
        obs.enable()
        _record_some_activity()
        path = obs.export_jsonl(tmp_path / "log.jsonl", include_wall=False)
        for line in path.read_text().splitlines():
            rec = json.loads(line)
            if rec["type"] == "span":
                assert rec["t0"] is None and rec["t1"] is None
                assert rec["dur"] is None
            if rec["type"] == "meta":
                assert rec["epoch"] is None


class TestSchemaValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            validate_event({"type": "frob"})

    def test_missing_field_rejected(self):
        with pytest.raises(SchemaError):
            validate_event({"type": "counter", "name": "x", "labels": {}})

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError):
            validate_event(
                {"type": "counter", "name": "x", "labels": {}, "value": "9"}
            )

    def test_bool_is_not_numeric(self):
        with pytest.raises(SchemaError):
            validate_event(
                {"type": "counter", "name": "x", "labels": {}, "value": True}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(SchemaError):
            validate_event(
                {"type": "counter", "name": "x", "labels": {}, "value": 1,
                 "extra": 2}
            )

    def test_span_must_not_end_before_start(self):
        rec = {
            "type": "span", "name": "x", "seq": 0, "span_id": 0,
            "parent_id": None, "t0": 2.0, "t1": 1.0, "dur": -1.0,
            "pid": 1, "tid": 1, "attrs": {},
        }
        with pytest.raises(SchemaError):
            validate_event(rec)

    def test_version_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            validate_event(
                {"type": "meta", "version": 999, "tool": "t", "epoch": None}
            )

    def test_non_jsonl_file_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text("not json\n")
        with pytest.raises(SchemaError):
            validate_jsonl(p)

    def test_empty_log_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(SchemaError):
            validate_jsonl(p)


class TestConsoleSummary:
    def test_tables_render_spans_and_metrics(self):
        obs.enable()
        _record_some_activity()
        text = obs.summary()
        assert "Instrumentation spans" in text
        assert "phase.outer" in text
        assert "Metrics" in text
        assert "occupancy" in text
        assert "resource=gpu:0" in text

    def test_empty_summary_message(self):
        obs.enable()
        assert "no spans or metrics" in obs.summary()


class TestChromeExport:
    def test_spans_only_export(self, tmp_path):
        obs.enable()
        _record_some_activity()
        path = obs.export_chrome(tmp_path / "t.json")
        payload = json.loads(path.read_text())
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {OBS_PID}
        assert {e["name"] for e in xs} == {"phase.outer", "phase.inner"}

    def test_unified_export_has_both_processes(self, tmp_path):
        from repro.sim import Op, Simulator, TaskGraph

        obs.enable()
        g = TaskGraph()
        g.add(Op("F/s0/m0", 1.0, resources=("gpu:0",), tags={"kind": "F"}))
        res = Simulator(g).run()

        path = obs.export_chrome(tmp_path / "t.json", sim_trace=res.trace)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {SIM_PID, OBS_PID}
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "simulated" in proc_names[SIM_PID]
        assert "wall clock" in proc_names[OBS_PID]

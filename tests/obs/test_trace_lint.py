"""The static span-name lint (scripts/trace_lint.py) and its guarantees."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "scripts"))

from trace_lint import NAME_RE, literal_span_names, run_lint  # noqa: E402

import ast  # noqa: E402


class TestNameConvention:
    def test_component_dot_operation_matches(self):
        assert NAME_RE.match("planner.search")
        assert NAME_RE.match("serve.queue_wait")

    def test_rejects_nonconforming_names(self):
        for bad in ("Planner.search", "planner", "a.b.c", "serve.", ".run",
                    "serve.Exec"):
            assert not NAME_RE.match(bad), bad


class TestLiteralExtraction:
    def test_finds_span_calls_not_docstrings(self):
        tree = ast.parse(
            '"""docs mention span("doc.only") but are not calls"""\n'
            "import repro.obs as obs\n"
            "def f():\n"
            "    with obs.span('planner.search'):\n"
            "        obs.tracer().add_span('serve.queue_wait', 0, 1)\n"
            "    with obs.start_trace('serve.request'):\n"
            "        pass\n"
            "    obs.span(name)  # non-literal: skipped\n"
        )
        names = {n for n, _line in literal_span_names(tree)}
        assert names == {"planner.search", "serve.queue_wait",
                         "serve.request"}


class TestRunLint:
    def test_repo_is_clean(self):
        assert run_lint(REPO / "src") == []

    def test_catches_unregistered_and_malformed_names(self, tmp_path):
        src = tmp_path / "src"
        pkg = src / "repro" / "obs"
        pkg.mkdir(parents=True)
        # minimal schema so run_lint can import repro.obs.schema from the
        # fixture tree instead of the real one
        (src / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "schema.py").write_text(
            "SPAN_NAMES = {'planner': ('planner.search', 'planner.stale')}\n"
            "def span_names():\n"
            "    return frozenset(n for ns in SPAN_NAMES.values()"
            " for n in ns)\n"
        )
        (src / "repro" / "mod.py").write_text(
            "import repro.obs as obs\n"
            "def f():\n"
            "    with obs.span('planner.search'):\n"
            "        pass\n"
            "    with obs.span('BadName'):\n"
            "        pass\n"
            "    with obs.span('serve.rogue'):\n"
            "        pass\n"
        )
        saved_modules = {
            k: v for k, v in sys.modules.items() if k.startswith("repro")
        }
        for k in saved_modules:
            del sys.modules[k]
        try:
            errors = run_lint(src)
        finally:
            for k in [k for k in sys.modules if k.startswith("repro")]:
                del sys.modules[k]
            sys.modules.update(saved_modules)
            sys.path.remove(str(src))
        joined = "\n".join(errors)
        assert "'BadName' does not match" in joined
        assert "'serve.rogue' is not registered" in joined
        assert "'planner.stale' is registered but never emitted" in joined

    def test_cli_exit_zero_on_clean_tree(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "trace_lint.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "all span names conform" in proc.stdout

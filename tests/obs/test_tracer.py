"""Tests for the span tracer: nesting, determinism, and the no-op path."""

import threading

import repro.obs as obs
from repro.obs.tracer import NOOP_SPAN, Tracer


class TestDisabledPath:
    def test_span_is_shared_noop_singleton(self):
        assert obs.span("anything", k=1) is NOOP_SPAN
        with obs.span("anything") as sp:
            assert sp.set(a=2) is sp

    def test_nothing_recorded_while_disabled(self):
        with obs.span("x"):
            pass
        assert len(obs.tracer()) == 0

    def test_noop_swallows_no_exceptions(self):
        try:
            with obs.span("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("no-op span must not suppress exceptions")


class TestRecording:
    def test_span_records_interval_and_attrs(self):
        obs.enable()
        with obs.span("work", model="bert48") as sp:
            sp.set(result=7)
        (rec,) = obs.tracer().spans()
        assert rec.name == "work"
        assert rec.attrs == {"model": "bert48", "result": 7}
        assert rec.t1 >= rec.t0
        assert rec.duration == rec.t1 - rec.t0

    def test_nesting_sets_parent_ids(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.tracer().spans()  # completion order
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_seq_is_monotonic_in_start_order(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
        with obs.span("c"):
            pass
        by_seq = sorted(obs.tracer().spans(), key=lambda r: r.seq)
        assert [r.name for r in by_seq] == ["a", "b", "c"]
        assert [r.seq for r in by_seq] == [0, 1, 2]

    def test_threads_get_independent_stacks(self):
        obs.enable()
        done = threading.Event()

        def worker():
            with obs.span("thread-span"):
                done.wait(timeout=5)

        t = threading.Thread(target=worker)
        with obs.span("main-span"):
            t.start()
            done.set()
            t.join()
        recs = {r.name: r for r in obs.tracer().spans()}
        # The thread's span must not claim the main thread's span as parent.
        assert recs["thread-span"].parent_id is None
        assert recs["main-span"].parent_id is None

    def test_aggregate_rolls_up_by_name(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("hot"):
                pass
        with tr.span("cold"):
            pass
        agg = {r["name"]: r for r in tr.aggregate()}
        assert agg["hot"]["count"] == 3
        assert agg["hot"]["total"] >= agg["hot"]["max"]
        assert agg["cold"]["count"] == 1


class TestLifecycle:
    def test_reset_discards_spans(self):
        obs.enable()
        with obs.span("x"):
            pass
        obs.reset()
        assert len(obs.tracer()) == 0

    def test_disable_keeps_recorded_data(self):
        obs.enable()
        with obs.span("x"):
            pass
        obs.disable()
        assert len(obs.tracer()) == 1

    def test_enable_reset_state_starts_clean(self):
        obs.enable()
        with obs.span("x"):
            pass
        obs.enable(reset_state=True)
        assert len(obs.tracer()) == 0

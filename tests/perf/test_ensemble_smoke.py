"""Tier-1 guard: the batched ensemble engine must not lose to the
per-seed path it replaces.

The full 32-seed BERT-48 measurement (with the 3x-single-run target)
lives in ``benchmarks/perf_ensemble.py`` and runs nightly; wall-clock
ratios at that scale are too slow for tier-1.  Here a small-but-real
ensemble — enough seeds that the batched engine's one-time graph build
and compile amortize — must beat the per-seed loop outright, best-of-3
on each side to damp scheduler noise.  The ensembles must also agree
bit-for-bit, so a "win" can never come from skipped work.
"""

import time

from repro.cluster import config_a
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.faults import SlowDevice, run_ensemble
from repro.models import get_model

NUM_SEEDS = 8
ROUNDS = 3


def test_batched_ensemble_beats_per_seed_path():
    prof = profile_model(get_model("bert48"))
    cluster = config_a(16)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        128,
        64,
    )
    models = (SlowDevice(factor=1.5),)

    def wall(engine):
        best = None
        report = None
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            report = run_ensemble(
                prof, cluster, plan, models, range(NUM_SEEDS),
                enforce_memory=False, sim_engine=engine,
            )
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, report

    batched_wall, batched_rep = wall("batched")
    per_seed_wall, per_seed_rep = wall("compiled")

    assert batched_rep.identical(per_seed_rep)
    assert batched_wall <= per_seed_wall, (
        f"batched {NUM_SEEDS}-seed ensemble took {batched_wall * 1e3:.0f}ms "
        f"vs {per_seed_wall * 1e3:.0f}ms per-seed — the batched engine "
        f"must not lose to the path it replaces"
    )

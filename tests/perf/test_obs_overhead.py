"""Tier-1 guard: disabled observability must cost (effectively) nothing.

Wall-clock A/B runs of the full simulator are too noisy for a tight CI
assertion, so the budget is enforced structurally instead:

* the disabled fast path must return shared no-op singletons (identity
  check — any accidental per-call allocation breaks this);
* the measured per-call cost of the no-op path, multiplied by a generous
  over-estimate of how many instrumentation touchpoints one BERT-48-scale
  simulated iteration executes, must stay under 2% of that iteration's
  measured wall time.

The full enabled-vs-disabled A/B measurement lives in
``benchmarks/perf_obs.py`` (not tier-1).
"""

import time

import pytest

import repro.obs as obs
from repro.cluster import config_a
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator
from repro.obs.metrics import NOOP_COUNTER
from repro.obs.tracer import NOOP_SPAN

#: Instrumentation budget: the no-op path may cost at most this fraction of
#: the benchmark simulation's wall time.
MAX_OVERHEAD_FRACTION = 0.02

#: Enabled-path budget: a fully instrumented simulation (spans, counters,
#: bulk histograms, collect-time gauges) may cost at most this fraction
#: over the uninstrumented run.
MAX_ENABLED_OVERHEAD_FRACTION = 0.20


def _sim_benchmark():
    """One BERT-48 M=128 compiled-simulator iteration (per-device M=256
    halves across the two replicas), as in ``tests/perf/test_sim_smoke``."""
    prof = profile_model(get_model("bert48"))
    cluster = config_a(16)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        256,
        128,
    )
    graph = PipelineExecutor(prof, cluster, plan, enforce_memory=False).build_graph()
    t0 = time.perf_counter()
    res = Simulator(graph, engine="compiled").run()
    elapsed = time.perf_counter() - t0
    assert res.makespan > 0
    return len(graph), elapsed


def test_disabled_path_returns_shared_singletons():
    assert not obs.enabled()
    assert obs.span("sim.run") is NOOP_SPAN
    assert obs.span("other", attr=1) is NOOP_SPAN
    assert obs.counter("c") is NOOP_COUNTER
    assert obs.gauge("g") is NOOP_COUNTER  # one shared no-op metric object
    assert obs.histogram("h") is NOOP_COUNTER


def test_noop_overhead_under_two_percent_of_sim_benchmark():
    num_ops, sim_elapsed = _sim_benchmark()

    # Per-call cost of the two disabled primitives instrumented code uses:
    # the hoisted enabled() check and a full no-op span round-trip.
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        obs.enabled()
    enabled_cost = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("x"):
            pass
    span_cost = (time.perf_counter() - t0) / n

    # Over-estimate of touchpoints in one instrumented simulation.  Every
    # hot loop hoists ``track = obs.enabled()`` into a local before
    # iterating, so per run the code executes a handful of enabled()
    # checks and spans — not one per op.  Pad both counts well beyond what
    # planner + executor + simulator actually perform (~10 each).
    touchpoints_spans = 64
    touchpoints_checks = 1024
    assert num_ops > touchpoints_checks  # the loop itself dwarfs the checks
    budget = MAX_OVERHEAD_FRACTION * sim_elapsed
    cost = touchpoints_spans * span_cost + touchpoints_checks * enabled_cost
    assert cost < budget, (
        f"no-op instrumentation cost estimate {cost * 1e3:.2f}ms exceeds "
        f"{MAX_OVERHEAD_FRACTION:.0%} of the {sim_elapsed * 1e3:.0f}ms "
        f"benchmark simulation"
    )


def test_enabled_gauges_are_collect_time_providers():
    """The expensive per-resource/per-device gauges are deferred: after an
    instrumented run they hold pending collect-time providers, the first
    read evaluates the shared vectorized pass (memoized — no second
    evaluation), and the value matches the result's own accounting."""
    from repro.cluster import config_b
    from repro.models import uniform_model

    model = uniform_model("obs-lazy", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
    prof = profile_model(model)
    cluster = config_b(2)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
    )
    graph = PipelineExecutor(prof, cluster, plan).build_graph()
    obs.enable(reset_state=True)
    try:
        res = Simulator(graph, engine="compiled").run()
        reg = obs.registry()
        peak_g = reg.gauge("sim.memory_peak_bytes", device="gpu:0")
        occ_g = reg.gauge("sim.occupancy", resource="gpu:0")
        # Providers pending: the simulation did not pay to compute them.
        assert peak_g._fn is not None
        assert occ_g._fn is not None
        assert peak_g.value == res.memory.peak("gpu:0")
        busy = res.trace.busy_totals()
        assert occ_g.value == busy["gpu:0"] / res.makespan
        # Evaluated exactly once: reads are answered from the memo.
        assert peak_g._fn is None
        assert occ_g._fn is None
    finally:
        obs.disable()
        obs.reset()


@pytest.mark.slow
def test_enabled_overhead_under_twenty_percent_of_sim_benchmark():
    """Wall-clock A/B of the instrumented vs. plain benchmark simulation.

    The collect-time gauges keep the enabled path to list appends plus two
    bulk histogram records, so even a wall-clock comparison has margin:
    the measured overhead is a few percent of a run the 20% budget caps.
    The arms are interleaved within each round (host slow phases bias both
    sides) and it runs in the nightly slow pass — wall-clock A/Bs at this
    resolution are too sensitive to suite-wide allocator state for tier-1,
    where ``test_enabled_gauges_are_collect_time_providers`` enforces the
    same budget structurally.  ``benchmarks/perf_obs.py`` is the full
    measurement."""
    prof = profile_model(get_model("bert48"))
    cluster = config_a(16)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        256,
        128,
    )

    def run_once(enabled):
        graph = PipelineExecutor(
            prof, cluster, plan, enforce_memory=False
        ).build_graph()
        if enabled:
            obs.enable(reset_state=True)
        else:
            obs.disable()
        t0 = time.perf_counter()
        res = Simulator(graph, engine="compiled").run()
        elapsed = time.perf_counter() - t0
        obs.disable()
        obs.reset()
        assert res.makespan > 0
        return elapsed

    disabled = enabled = None
    try:
        for _ in range(3):
            dt = run_once(False)
            disabled = dt if disabled is None else min(disabled, dt)
            dt = run_once(True)
            enabled = dt if enabled is None else min(enabled, dt)
    finally:
        obs.disable()
        obs.reset()
    cap = disabled * (1 + MAX_ENABLED_OVERHEAD_FRACTION)
    assert enabled <= cap, (
        f"obs-enabled simulation took {enabled * 1e3:.1f}ms vs "
        f"{disabled * 1e3:.1f}ms disabled "
        f"(+{(enabled / disabled - 1) * 100:.1f}%), over the "
        f"{MAX_ENABLED_OVERHEAD_FRACTION:.0%} budget"
    )

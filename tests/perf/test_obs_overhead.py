"""Tier-1 guard: disabled observability must cost (effectively) nothing.

Wall-clock A/B runs of the full simulator are too noisy for a tight CI
assertion, so the budget is enforced structurally instead:

* the disabled fast path must return shared no-op singletons (identity
  check — any accidental per-call allocation breaks this);
* the measured per-call cost of the no-op path, multiplied by a generous
  over-estimate of how many instrumentation touchpoints one BERT-48-scale
  simulated iteration executes, must stay under 2% of that iteration's
  measured wall time.

The full enabled-vs-disabled A/B measurement lives in
``benchmarks/perf_obs.py`` (not tier-1).
"""

import time

import repro.obs as obs
from repro.cluster import config_a
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator
from repro.obs.metrics import NOOP_COUNTER
from repro.obs.tracer import NOOP_SPAN

#: Instrumentation budget: the no-op path may cost at most this fraction of
#: the benchmark simulation's wall time.
MAX_OVERHEAD_FRACTION = 0.02


def _sim_benchmark():
    """One BERT-48 M=128 compiled-simulator iteration (per-device M=256
    halves across the two replicas), as in ``tests/perf/test_sim_smoke``."""
    prof = profile_model(get_model("bert48"))
    cluster = config_a(16)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        256,
        128,
    )
    graph = PipelineExecutor(prof, cluster, plan, enforce_memory=False).build_graph()
    t0 = time.perf_counter()
    res = Simulator(graph, engine="compiled").run()
    elapsed = time.perf_counter() - t0
    assert res.makespan > 0
    return len(graph), elapsed


def test_disabled_path_returns_shared_singletons():
    assert not obs.enabled()
    assert obs.span("sim.run") is NOOP_SPAN
    assert obs.span("other", attr=1) is NOOP_SPAN
    assert obs.counter("c") is NOOP_COUNTER
    assert obs.gauge("g") is NOOP_COUNTER  # one shared no-op metric object
    assert obs.histogram("h") is NOOP_COUNTER


def test_noop_overhead_under_two_percent_of_sim_benchmark():
    num_ops, sim_elapsed = _sim_benchmark()

    # Per-call cost of the two disabled primitives instrumented code uses:
    # the hoisted enabled() check and a full no-op span round-trip.
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        obs.enabled()
    enabled_cost = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("x"):
            pass
    span_cost = (time.perf_counter() - t0) / n

    # Over-estimate of touchpoints in one instrumented simulation.  Every
    # hot loop hoists ``track = obs.enabled()`` into a local before
    # iterating, so per run the code executes a handful of enabled()
    # checks and spans — not one per op.  Pad both counts well beyond what
    # planner + executor + simulator actually perform (~10 each).
    touchpoints_spans = 64
    touchpoints_checks = 1024
    assert num_ops > touchpoints_checks  # the loop itself dwarfs the checks
    budget = MAX_OVERHEAD_FRACTION * sim_elapsed
    cost = touchpoints_spans * span_cost + touchpoints_checks * enabled_cost
    assert cost < budget, (
        f"no-op instrumentation cost estimate {cost * 1e3:.2f}ms exceeds "
        f"{MAX_OVERHEAD_FRACTION:.0%} of the {sim_elapsed * 1e3:.0f}ms "
        f"benchmark simulation"
    )

"""Tier-1 wall-clock smoke cap for the vectorized planner search.

The full before/after benchmark lives in ``benchmarks/test_perf_primitives``;
this test only guards against a silent order-of-magnitude regression (e.g.
the scalar path becoming the default again, or the scanner caches breaking).
The cap is ~10× the observed fast-path time on a developer laptop, so it
passes comfortably on slow CI while still failing loudly if the search
falls back to per-plan scalar evaluation (~10× slower).
"""

import time

from repro.cluster import config_c
from repro.core import Planner, profile_model
from repro.models import vgg19

#: Observed fast-path time ≈ 0.2 s; scalar path ≈ 1.5 s.  10× margin.
WALLCLOCK_CAP_S = 2.0


def test_vgg19_config_c_search_under_cap():
    prof = profile_model(vgg19())
    cluster = config_c(16)
    t0 = time.perf_counter()
    result = Planner(prof, cluster, 2048).search()
    elapsed = time.perf_counter() - t0
    assert result.plan is not None
    assert elapsed < WALLCLOCK_CAP_S, (
        f"planner search took {elapsed:.2f}s (cap {WALLCLOCK_CAP_S}s) — "
        "did the vectorized scan path regress?"
    )

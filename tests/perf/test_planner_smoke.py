"""Tier-1 wall-clock smoke cap for the vectorized planner search.

The full before/after benchmark lives in ``benchmarks/test_perf_primitives``;
this test only guards against a silent order-of-magnitude regression (e.g.
the scalar path becoming the default again, or the scanner caches breaking).
The cap is ~10× the observed fast-path time on a developer laptop, so it
passes comfortably on slow CI while still failing loudly if the search
falls back to per-plan scalar evaluation (~10× slower).
"""

import time

from repro.cluster import config_c
from repro.core import Planner, PlannerConfig, profile_model
from repro.core.plancache import PlanCache
from repro.core.planner import plan_best
from repro.models import vgg19

#: Observed fast-path time ≈ 0.2 s; scalar path ≈ 1.5 s.  10× margin.
WALLCLOCK_CAP_S = 2.0

#: Observed warm in-memory hit ≈ 0.5 ms; the benchmark gates ≤ 5 ms.
#: 100× margin here so slow CI never flakes while a hit that silently
#: re-runs the search (hundreds of ms) still fails loudly.
CACHE_HIT_CAP_S = 0.05


def test_vgg19_config_c_search_under_cap():
    prof = profile_model(vgg19())
    cluster = config_c(16)
    t0 = time.perf_counter()
    result = Planner(prof, cluster, 2048).search()
    elapsed = time.perf_counter() - t0
    assert result.plan is not None
    assert elapsed < WALLCLOCK_CAP_S, (
        f"planner search took {elapsed:.2f}s (cap {WALLCLOCK_CAP_S}s) — "
        "did the vectorized scan path regress?"
    )


def test_warm_cache_hit_under_cap():
    """A warm plan-cache hit must cost decode+evaluate, never a search."""
    prof = profile_model(vgg19())
    cluster = config_c(16)
    cfg = PlannerConfig()
    cache = PlanCache()
    fresh = plan_best(prof, cluster, 2048, cfg, cache=cache)
    t0 = time.perf_counter()
    hit = plan_best(prof, cluster, 2048, cfg, cache=cache)
    elapsed = time.perf_counter() - t0
    assert cache.hits == 1
    assert hit.plan.notation == fresh.plan.notation
    assert hit.estimate.latency == fresh.estimate.latency
    assert elapsed < CACHE_HIT_CAP_S, (
        f"warm cache hit took {elapsed * 1e3:.1f}ms "
        f"(cap {CACHE_HIT_CAP_S * 1e3:.0f}ms)"
    )

"""Benchmark JSON records round-trip and schema-check."""

import json

import pytest

from repro.perf.record import SCHEMA, load_bench_json, write_bench_json


def test_round_trip(tmp_path):
    path = write_bench_json(
        tmp_path / "perf_x.json",
        "perf_x",
        {"model": "bert48", "gbs": 64},
        [
            {"name": "baseline", "ms": 100.0, "speedup": 1.0},
            {"name": "fast", "ms": 25.0, "speedup": 4.0},
        ],
    )
    data = load_bench_json(path)
    assert data["schema"] == SCHEMA
    assert data["bench"] == "perf_x"
    assert data["config"]["model"] == "bert48"
    assert isinstance(data["git_rev"], str) and data["git_rev"]
    assert [e["name"] for e in data["entries"]] == ["baseline", "fast"]


def test_entries_need_name_and_ms(tmp_path):
    with pytest.raises(ValueError):
        write_bench_json(tmp_path / "x.json", "x", {}, [{"name": "no-ms"}])


def test_schema_mismatch_rejected(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"schema": "bench-v0", "entries": []}))
    with pytest.raises(ValueError):
        load_bench_json(p)

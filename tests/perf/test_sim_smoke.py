"""Tier-1 wall-clock smoke cap for the compiled simulator event loop.

The full before/after benchmark lives in ``benchmarks/test_perf_primitives``;
this test only guards against a silent order-of-magnitude regression (e.g.
the compiled engine quietly falling back to the reference loop, or the
indexed-graph columns being rebuilt per run).  The cap is ~15× the observed
compiled-loop time on a developer laptop, so it passes comfortably on slow
CI while still failing loudly if simulation degenerates to reference speed
(~6× slower) plus a regression margin.
"""

import time

from repro.cluster import config_a
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import get_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Simulator

#: Observed compiled run ≈ 0.05 s for M=128 (~33k ops); reference ≈ 0.3 s.
WALLCLOCK_CAP_S = 1.0


def test_bert48_large_m_simulation_under_cap():
    prof = profile_model(get_model("bert48"))
    cluster = config_a(16)
    d = cluster.devices
    plan = ParallelPlan(
        prof.graph,
        [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
        256,
        128,
    )
    graph = PipelineExecutor(prof, cluster, plan, enforce_memory=False).build_graph()
    t0 = time.perf_counter()
    res = Simulator(graph, engine="compiled").run()
    elapsed = time.perf_counter() - t0
    assert res.makespan > 0
    assert elapsed < WALLCLOCK_CAP_S, (
        f"compiled simulation of {len(graph)} ops took {elapsed:.2f}s "
        f"(cap {WALLCLOCK_CAP_S}s) — did the compiled event loop regress?"
    )

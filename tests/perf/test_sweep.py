"""repro.perf.sweep: deterministic ordering and byte-identical reports."""

import math
import os
import threading
import time

import pytest

from repro.perf import ForkPool, default_jobs, sweep
from repro.perf.sweep import _run_serial


def _square(x):
    return x * x


def _pid(_x):
    return os.getpid()


def _boom(x):
    raise RuntimeError(f"boom {x}")


def _slow_identity(x):
    # Later tasks finish first if results were collected by completion.
    time.sleep(0.05 * (3 - x))
    return x


def _point_key(model, config, gbs):
    return f"{model}/{config}/{gbs}"


class TestSweep:
    def test_serial_matches_map(self):
        tasks = [(i,) for i in range(10)]
        assert sweep(_square, tasks, jobs=1) == [i * i for i in range(10)]

    def test_results_in_task_order_not_completion_order(self):
        tasks = [(i,) for i in range(3)]
        assert sweep(_slow_identity, tasks, jobs=3) == [0, 1, 2]

    def test_parallel_matches_serial(self):
        tasks = [(i,) for i in range(20)]
        assert sweep(_square, tasks, jobs=4) == sweep(_square, tasks, jobs=1)

    def test_mixed_arg_tuples(self):
        tasks = [("vgg19", "A", 1024), ("bert48", "C", 64)]
        assert sweep(_point_key, tasks, jobs=2) == ["vgg19/A/1024", "bert48/C/64"]

    def test_empty_grid(self):
        assert sweep(_square, [], jobs=8) == []

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_serial_helper(self):
        assert _run_serial(_square, [(3,)]) == [9]


class TestForkPool:
    def test_inline_mode_runs_in_process(self):
        pool = ForkPool(2, inline=True)
        assert pool.mode == "inline"
        assert pool.run(_pid, 0) == os.getpid()
        pool.shutdown()

    def test_run_and_map_ordered(self):
        pool = ForkPool(2)
        try:
            assert pool.run(_square, 7) == 49
            assert pool.map_ordered(_square, [(i,) for i in range(6)]) == [
                i * i for i in range(6)
            ]
        finally:
            pool.shutdown()

    def test_worker_exceptions_propagate_without_degrading(self):
        pool = ForkPool(2, inline=True)
        with pytest.raises(RuntimeError, match="boom 3"):
            pool.run(_boom, 3)
        # fn-level failures must not flip the pool's mode
        assert pool.run(_square, 2) == 4
        pool.shutdown()

    def test_pool_persists_across_submissions(self):
        """The serve-cache-warmth property: one long-lived pool keeps its
        worker processes (and their forked memory) across run() calls."""
        pool = ForkPool(1)
        try:
            first = pool.run(_pid, 0)
            if first == os.getpid():  # sandbox degraded to inline: vacuous
                pytest.skip("process pool unavailable in this environment")
            assert pool.run(_pid, 0) == first
        finally:
            pool.shutdown()

    def test_concurrent_submitters(self):
        pool = ForkPool(2, inline=True)
        results = {}

        def submit(i):
            results[i] = pool.run(_square, i)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: i * i for i in range(8)}
        pool.shutdown()

    def test_shutdown_idempotent(self):
        pool = ForkPool(1, inline=True)
        pool.shutdown()
        pool.shutdown()
        assert pool.run(_square, 3) == 9  # still usable inline after shutdown


class TestFig12ByteIdentity:
    def test_parallel_report_byte_identical_to_serial(self):
        """The acceptance contract: fig12 with jobs>1 produces byte-identical
        report output to the serial path (reduced grid for test budget)."""
        from repro.experiments import fig12

        sweeps = {"vgg19": [1024]}
        serial = fig12.run(models=["vgg19"], configs=["A", "C"], sweeps=sweeps, jobs=1)
        parallel = fig12.run(models=["vgg19"], configs=["A", "C"], sweeps=sweeps, jobs=2)
        assert fig12.format_results(parallel) == fig12.format_results(serial)
        for s, p in zip(serial, parallel):
            for field in ("model", "config", "gbs", "hybrid_plan"):
                assert getattr(s, field) == getattr(p, field)
            for field in ("dp_no_overlap", "dp_overlap", "best_hybrid"):
                a, b = getattr(s, field), getattr(p, field)
                assert (a == b) or (math.isnan(a) and math.isnan(b))

"""Tests for the pipeline efficiency analysis."""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.runtime.analysis import analyze, closed_form_efficiency


def straight_exec(num_stages=4, m=16, act=1e4):
    model = uniform_model(
        "a", num_stages, 9e9, 1_000_000, act, profile_batch=1
    )
    cluster = config_b(num_stages)
    prof = profile_model(model)
    stages = [Stage(i, i + 1, (cluster.device(i),)) for i in range(num_stages)]
    plan = ParallelPlan(model, stages, m, m)
    return execute_plan(prof, cluster, plan, warmup_policy="PB")


class TestClosedForm:
    def test_single_stage_is_perfect(self):
        assert closed_form_efficiency(1, 8, 0.0) == 1.0

    def test_more_micro_batches_better(self):
        assert closed_form_efficiency(4, 32, 0.0) > closed_form_efficiency(4, 4, 0.0)

    def test_more_stages_worse(self):
        assert closed_form_efficiency(8, 16, 0.0) < closed_form_efficiency(2, 16, 0.0)

    def test_comm_ratio_worsens(self):
        assert closed_form_efficiency(4, 16, 0.5) < closed_form_efficiency(4, 16, 0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            closed_form_efficiency(0, 4, 0.0)


class TestAnalyze:
    def test_breakdown_covers_all_devices(self):
        report = analyze(straight_exec())
        assert len(report.devices) == 4
        assert all(0 < d.utilization <= 1 for d in report.devices)

    def test_measured_tracks_closed_form(self):
        """With negligible comm, the simulator reproduces 1/(1+(S-1)/M)."""
        for m in (8, 16, 64):
            report = analyze(straight_exec(m=m))
            assert report.measured_efficiency == pytest.approx(
                report.predicted_efficiency, rel=0.12
            )

    def test_efficiency_improves_with_m(self):
        e_small = analyze(straight_exec(m=4)).measured_efficiency
        e_big = analyze(straight_exec(m=64)).measured_efficiency
        assert e_big > e_small

    def test_bubble_fraction_complement(self):
        report = analyze(straight_exec())
        assert report.bubble_fraction == pytest.approx(1 - report.measured_efficiency)

    def test_summary_renders(self):
        text = analyze(straight_exec()).summary()
        assert "measured efficiency" in text
        assert "gpu:0" in text

"""Tests for activation-checkpointing strategies."""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.runtime.checkpointing import (
    normalize_strategy,
    stage_checkpointing,
)


@pytest.fixture
def setup():
    model = uniform_model(
        "u", 9, 9e9, 1_000_000, 2e6, stored_bytes=2e7, profile_batch=2
    )
    cluster = config_b(2)
    prof = profile_model(model)
    d = cluster.devices
    plan = ParallelPlan(
        model, [Stage(0, 4, (d[0],)), Stage(4, 9, (d[1],))], 16, 8
    )
    return prof, cluster, plan


class TestNormalize:
    def test_booleans(self):
        assert normalize_strategy(True) == "boundary"
        assert normalize_strategy(False) == "none"
        assert normalize_strategy(None) == "none"

    def test_names_passthrough(self):
        for s in ("none", "boundary", "sqrt"):
            assert normalize_strategy(s) == s

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            normalize_strategy("everything")


class TestStageCheckpointing:
    def test_none_keeps_everything(self, setup):
        prof, _, plan = setup
        ck = stage_checkpointing(prof, plan, 1, "none")
        assert ck.resident_per_microbatch == prof.stored_bytes(4, 9, plan.device_batch(1))
        assert ck.transient_backward == 0.0
        assert ck.extra_backward_time == 0.0

    def test_boundary_keeps_input_only(self, setup):
        prof, _, plan = setup
        ck = stage_checkpointing(prof, plan, 1, "boundary")
        assert ck.resident_per_microbatch == pytest.approx(
            prof.boundary_bytes(4, plan.micro_batch_size)
        )
        assert ck.extra_backward_time == pytest.approx(
            prof.fwd_time(4, 9, plan.device_batch(1))
        )

    def test_resident_ordering(self, setup):
        """none >= sqrt >= boundary in resident bytes per micro-batch."""
        prof, _, plan = setup
        none = stage_checkpointing(prof, plan, 1, "none")
        sqrt = stage_checkpointing(prof, plan, 1, "sqrt")
        boundary = stage_checkpointing(prof, plan, 1, "boundary")
        assert none.resident_per_microbatch >= sqrt.resident_per_microbatch
        assert sqrt.resident_per_microbatch >= boundary.resident_per_microbatch

    def test_sqrt_transient_smaller_than_boundary(self, setup):
        """The whole point of sqrt(n): rematerialize one segment at a time."""
        prof, _, plan = setup
        sqrt = stage_checkpointing(prof, plan, 1, "sqrt")
        boundary = stage_checkpointing(prof, plan, 1, "boundary")
        assert sqrt.transient_backward < boundary.transient_backward


class TestExecutorIntegration:
    @pytest.mark.parametrize("strategy", ["boundary", "sqrt"])
    def test_recompute_slower_smaller(self, setup, strategy):
        prof, cluster, plan = setup
        base = execute_plan(prof, cluster, plan, recompute="none")
        rc = execute_plan(prof, cluster, plan, recompute=strategy)
        assert rc.iteration_time > base.iteration_time
        assert rc.max_peak_memory() < base.max_peak_memory()

    def test_recompute_strategies_beat_none(self, setup):
        prof, cluster, plan = setup
        peaks = {
            s: execute_plan(prof, cluster, plan, recompute=s).max_peak_memory()
            for s in ("none", "boundary", "sqrt")
        }
        # Both strategies cut the peak; which wins depends on the in-flight
        # count K: boundary holds less per micro-batch but rematerializes
        # the whole stage at once, sqrt holds more checkpoints but bounds
        # the transient to one segment.  At small K sqrt wins.
        assert peaks["sqrt"] < peaks["none"]
        assert peaks["boundary"] < peaks["none"]
        assert peaks["sqrt"] < peaks["boundary"]

    def test_legacy_bool_still_works(self, setup):
        prof, cluster, plan = setup
        old = execute_plan(prof, cluster, plan, recompute=True)
        new = execute_plan(prof, cluster, plan, recompute="boundary")
        assert old.iteration_time == pytest.approx(new.iteration_time)
        assert old.max_peak_memory() == pytest.approx(new.max_peak_memory())

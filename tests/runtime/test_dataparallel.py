"""Unit tests for the DP baselines."""

import pytest

from repro.cluster import config_a, config_b, config_c
from repro.core import profile_model
from repro.models import uniform_model, vgg19
from repro.runtime.dataparallel import (
    dp_iteration_time,
    overlapped_allreduce_exposure,
    single_device_time,
)


@pytest.fixture
def model():
    return uniform_model("u", 8, 9e9, 10_000_000, 1e6, profile_batch=4)


class TestDPIterationTime:
    def test_single_device_no_comm(self, model):
        c = config_b(2)
        prof = profile_model(model)
        res = dp_iteration_time(prof, c, [c.device(0)], 16)
        assert res.allreduce_exposed == 0.0
        assert res.iteration_time == pytest.approx(res.compute_time)

    def test_overlap_never_slower(self, model):
        prof = profile_model(model)
        for cfg in (config_a(2), config_b(4), config_c(4)):
            no = dp_iteration_time(prof, cfg, cfg.devices, 64, overlap=False)
            yes = dp_iteration_time(prof, cfg, cfg.devices, 64, overlap=True)
            assert yes.iteration_time <= no.iteration_time + 1e-12

    def test_slower_network_bigger_exposure(self, model):
        prof = profile_model(model)
        b = dp_iteration_time(prof, config_b(4), config_b(4).devices, 64, overlap=False)
        c = dp_iteration_time(prof, config_c(4), config_c(4).devices, 64, overlap=False)
        assert c.allreduce_exposed > b.allreduce_exposed

    def test_steps_from_accumulation(self, model):
        c = config_b(4)
        prof = profile_model(model)
        # 64 global / 4 devices = 16 local / 4 per micro-batch = 4 steps.
        res = dp_iteration_time(prof, c, c.devices, 64)
        assert res.steps == 4
        assert res.device_batch == pytest.approx(4.0)

    def test_invalid_args(self, model):
        c = config_b(2)
        prof = profile_model(model)
        with pytest.raises(ValueError):
            dp_iteration_time(prof, c, [], 16)
        with pytest.raises(ValueError):
            dp_iteration_time(prof, c, c.devices, 0)


class TestOverlapModel:
    def test_vgg_is_overlap_friendly(self):
        """Paper §VI-B: VGG's fc weights at the end finish backward first,
        so they overlap with the long conv backward tail."""
        prof = profile_model(vgg19())
        c = config_b(4)
        from repro.cluster.collectives import allreduce_time

        full = allreduce_time(prof.param_bytes(0, prof.num_layers), c, c.devices)
        exposed = overlapped_allreduce_exposure(prof, c, c.devices, 32)
        # Overlap hides a meaningful part of the AllReduce.
        assert exposed < full

    def test_single_device_zero(self, model):
        c = config_b(2)
        prof = profile_model(model)
        assert overlapped_allreduce_exposure(prof, c, [c.device(0)], 4) == 0.0

    def test_exposure_bounded_by_full_allreduce(self, model):
        from repro.cluster.collectives import allreduce_time

        prof = profile_model(model)
        for cfg in (config_b(4), config_c(8)):
            full = allreduce_time(prof.param_bytes(0, 8), cfg, cfg.devices)
            # Bucketed serialization adds some latency overhead but stays
            # in the same ballpark as the monolithic AllReduce.
            exp = overlapped_allreduce_exposure(prof, cfg, cfg.devices, 4)
            assert exp <= full * 1.5


class TestSingleDeviceTime:
    def test_linear_in_gbs(self, model):
        prof = profile_model(model)
        t1 = single_device_time(prof, 64)
        t2 = single_device_time(prof, 128)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_speedup_denominator_sane(self, model):
        c = config_b(4)
        prof = profile_model(model)
        t_single = single_device_time(prof, 64)
        res = dp_iteration_time(prof, c, c.devices, 64)
        speedup = t_single / res.iteration_time
        assert 1.0 < speedup <= 4.0

"""Integration tests for the pipelined runtime executor."""

import pytest

from repro.cluster import config_a, config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage, single_stage_plan
from repro.models import bert48, uniform_model
from repro.runtime import execute_plan
from repro.runtime.executor import PipelineExecutor
from repro.runtime.memory import OutOfMemoryError


@pytest.fixture
def model():
    return uniform_model("u", 8, 9e9, 1_000_000, 1e6, stored_bytes=2e6, profile_batch=2)


@pytest.fixture
def cluster():
    return config_b(4)


def two_stage(model, cluster, m=4, gbs=8, devs=((0,), (1,))):
    d = cluster.devices
    half = model.num_layers // 2
    stages = [
        Stage(0, half, tuple(d[i] for i in devs[0])),
        Stage(half, model.num_layers, tuple(d[i] for i in devs[1])),
    ]
    return ParallelPlan(model, stages, gbs, m)


class TestBasicExecution:
    def test_runs_and_produces_positive_makespan(self, model, cluster):
        res = execute_plan(profile_model(model), cluster, two_stage(model, cluster))
        assert res.iteration_time > 0
        assert res.throughput > 0

    def test_all_ops_executed(self, model, cluster):
        plan = two_stage(model, cluster, m=3, gbs=6)
        res = execute_plan(profile_model(model), cluster, plan)
        kinds = {}
        for e in res.trace.events:
            kinds[e.tags.get("kind")] = kinds.get(e.tags.get("kind"), 0) + 1
        # 2 stages x 3 micro-batches F and B, 3 sends, 3 sendbacks.
        assert kinds["F"] == 6
        assert kinds["B"] == 6
        assert kinds["send"] == 3
        assert kinds["sendback"] == 3

    def test_single_stage_dp(self, model, cluster):
        plan = single_stage_plan(model, cluster.devices, 8, 2)
        res = execute_plan(profile_model(model), cluster, plan)
        assert res.iteration_time > 0
        ar = [e for e in res.trace.events if e.tags.get("kind") == "AR"]
        assert len(ar) == 1

    def test_no_allreduce_without_replication(self, model, cluster):
        res = execute_plan(profile_model(model), cluster, two_stage(model, cluster))
        assert not [e for e in res.trace.events if e.tags.get("kind") == "AR"]

    def test_replicated_stage_has_allreduce(self, model, cluster):
        plan = two_stage(model, cluster, devs=((0, 1), (2,)))
        res = execute_plan(profile_model(model), cluster, plan)
        ar = [e for e in res.trace.events if e.tags.get("kind") == "AR"]
        assert len(ar) == 1
        # AllReduce is the last thing touching stage 0's gradient state.
        b_end = max(e.end for e in res.trace.events if e.tags.get("kind") == "B" and e.tags["stage"] == 0)
        assert ar[0].start >= b_end


class TestDependencyOrdering:
    def test_forward_flows_downstream(self, model, cluster):
        res = execute_plan(profile_model(model), cluster, two_stage(model, cluster))
        for mb in range(4):
            f0 = res.trace.find(f"F/s0/m{mb}/r0")
            snd = res.trace.find(f"send/s0/m{mb}")
            f1 = res.trace.find(f"F/s1/m{mb}/r0")
            assert f0.end <= snd.start + 1e-12
            assert snd.end <= f1.start + 1e-12

    def test_backward_flows_upstream(self, model, cluster):
        res = execute_plan(profile_model(model), cluster, two_stage(model, cluster))
        for mb in range(4):
            b1 = res.trace.find(f"B/s1/m{mb}/r0")
            back = res.trace.find(f"sendback/s0/m{mb}")
            b0 = res.trace.find(f"B/s0/m{mb}/r0")
            assert b1.end <= back.start + 1e-12
            assert back.end <= b0.start + 1e-12

    def test_dapple_first_stage_interleaves_early_backward(self, model, cluster):
        # With the DAPPLE schedule, B0 on stage 0 must run before the last
        # forward — the early-backward property (paper Fig. 3b).
        plan = two_stage(model, cluster, m=6, gbs=12)
        res = execute_plan(profile_model(model), cluster, plan, schedule="dapple")
        b0 = res.trace.find("B/s0/m0/r0")
        f_last = res.trace.find("F/s0/m5/r0")
        assert b0.end <= f_last.start + 1e-12

    def test_gpipe_no_early_backward(self, model, cluster):
        plan = two_stage(model, cluster, m=6, gbs=12)
        res = execute_plan(profile_model(model), cluster, plan, schedule="gpipe")
        b0 = res.trace.find("B/s0/m0/r0")
        f_last = res.trace.find("F/s0/m5/r0")
        assert f_last.end <= b0.start + 1e-12


class TestMemoryBehaviour:
    def test_dapple_peak_flat_in_m(self, model, cluster):
        prof = profile_model(model)
        peaks = []
        for m in (4, 8, 16):
            plan = two_stage(model, cluster, m=m, gbs=2 * m)
            res = execute_plan(prof, cluster, plan, schedule="dapple")
            peaks.append(res.max_peak_memory())
        assert peaks[0] == pytest.approx(peaks[1], rel=1e-6)
        assert peaks[1] == pytest.approx(peaks[2], rel=1e-6)

    def test_gpipe_peak_grows_with_m(self, model, cluster):
        prof = profile_model(model)
        peaks = []
        for m in (4, 8, 16):
            plan = two_stage(model, cluster, m=m, gbs=2 * m)
            res = execute_plan(prof, cluster, plan, schedule="gpipe")
            peaks.append(res.max_peak_memory())
        assert peaks[0] < peaks[1] < peaks[2]

    def test_dapple_never_exceeds_gpipe_peak(self, model, cluster):
        prof = profile_model(model)
        plan = two_stage(model, cluster, m=8, gbs=16)
        da = execute_plan(prof, cluster, plan, schedule="dapple")
        gp = execute_plan(prof, cluster, plan, schedule="gpipe")
        assert da.max_peak_memory() <= gp.max_peak_memory() + 1e-9

    def test_memory_returns_to_persistent(self, model, cluster):
        plan = two_stage(model, cluster)
        res = execute_plan(profile_model(model), cluster, plan)
        for i, stage in enumerate(plan.stages):
            for d in stage.devices:
                final = res.memory.final(d.resource_key)
                assert final == pytest.approx(
                    PipelineExecutor(
                        profile_model(model), cluster, plan
                    ).stage_mem[i].persistent_bytes
                )

    def test_gpipe_oom_raises(self):
        m = bert48()
        c = config_b(2)
        prof = profile_model(m)
        plan = ParallelPlan(m, [Stage(0, 25, (c.device(0),)), Stage(25, 50, (c.device(1),))], 64, 32)
        with pytest.raises(OutOfMemoryError):
            execute_plan(prof, c, plan, schedule="gpipe")
        # DAPPLE handles the same setting by bounding in-flight batches.
        res = execute_plan(prof, c, plan, schedule="dapple")
        assert res.max_peak_memory() < 16 * 2**30


class TestRecompute:
    def test_recompute_slower_but_smaller(self, model, cluster):
        prof = profile_model(model)
        plan = two_stage(model, cluster, m=8, gbs=16)
        base = execute_plan(prof, cluster, plan, recompute=False)
        rc = execute_plan(prof, cluster, plan, recompute=True)
        assert rc.iteration_time > base.iteration_time
        assert rc.max_peak_memory() < base.max_peak_memory()

    def test_recompute_overhead_about_one_forward(self, model, cluster):
        prof = profile_model(model)
        plan = two_stage(model, cluster, m=1, gbs=2)
        base = execute_plan(prof, cluster, plan, recompute=False)
        rc = execute_plan(prof, cluster, plan, recompute=True)
        extra = rc.iteration_time - base.iteration_time
        fwd_total = prof.fwd_time(0, 8, 2.0)
        assert extra == pytest.approx(fwd_total, rel=0.05)


class TestSchedulePolicies:
    def test_pb_at_least_as_fast_when_comm_heavy(self):
        # Big activations relative to compute: PB's extra warm-up batches
        # keep the pipeline fed (paper Table IV: GNMT +31%).
        m = uniform_model("comm", 8, 2e9, 1000, 4e7, stored_bytes=4e7, profile_batch=2)
        c = config_b(4)
        prof = profile_model(m)
        d = c.devices
        stages = [Stage(0, 2, (d[0],)), Stage(2, 4, (d[1],)), Stage(4, 6, (d[2],)), Stage(6, 8, (d[3],))]
        plan = ParallelPlan(m, stages, 32, 16)
        pa = execute_plan(prof, c, plan, warmup_policy="PA")
        pb = execute_plan(prof, c, plan, warmup_policy="PB")
        assert pb.iteration_time <= pa.iteration_time * 1.001

    def test_invalid_schedule_name(self, model, cluster):
        with pytest.raises(ValueError):
            execute_plan(profile_model(model), cluster, two_stage(model, cluster), schedule="zigzag")


class TestUtilization:
    def test_utilizations_between_0_and_1(self, model, cluster):
        res = execute_plan(profile_model(model), cluster, two_stage(model, cluster, m=8, gbs=16))
        for v in res.device_utilization().values():
            assert 0.0 < v <= 1.0

"""Tests for interleaved (virtual-stage) pipeline plans."""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage, interleaved_straight_plan
from repro.models import uniform_model
from repro.runtime import execute_plan


@pytest.fixture
def setup():
    model = uniform_model("u", 16, 9e9, 1_000_000, 2e6, profile_batch=1)
    cluster = config_b(4)
    return model, cluster, profile_model(model)


def plain_straight(model, cluster, m):
    stages = [Stage(4 * i, 4 * i + 4, (cluster.device(i),)) for i in range(4)]
    return ParallelPlan(model, stages, m, m)


class TestConstruction:
    def test_round_robin_assignment(self, setup):
        model, cluster, _ = setup
        plan = interleaved_straight_plan(model, cluster.devices, 8, 8, 2)
        assert plan.num_stages == 8
        owners = [s.devices[0].global_id for s in plan.stages]
        assert owners == [0, 1, 2, 3, 0, 1, 2, 3]
        assert plan.meta["interleaved"] is True

    def test_layers_fully_covered(self, setup):
        model, cluster, _ = setup
        plan = interleaved_straight_plan(model, cluster.devices, 8, 8, 2)
        assert plan.stages[0].layer_lo == 0
        assert plan.stages[-1].layer_hi == model.num_layers

    def test_too_many_virtual_stages_rejected(self, setup):
        model, cluster, _ = setup
        with pytest.raises(ValueError):
            interleaved_straight_plan(model, cluster.devices, 8, 8, 5)

    def test_device_reuse_rejected_without_flag(self, setup):
        model, cluster, _ = setup
        d = cluster.device(0)
        with pytest.raises(ValueError, match="two stages"):
            ParallelPlan(model, [Stage(0, 8, (d,)), Stage(8, 16, (d,))], 4, 4)


class TestExecution:
    def test_runs_and_all_ops_execute(self, setup):
        model, cluster, prof = setup
        plan = interleaved_straight_plan(model, cluster.devices, 4, 4, 2)
        res = execute_plan(prof, cluster, plan, warmup_policy="PB")
        f_ops = [e for e in res.trace.events if e.tags.get("kind") == "F"]
        assert len(f_ops) == 8 * 4  # 8 virtual stages x 4 micro-batches

    def test_interleaving_reduces_bubble_at_small_m(self, setup):
        model, cluster, prof = setup
        m = 4
        plain = execute_plan(prof, cluster, plain_straight(model, cluster, m),
                             warmup_policy="PB")
        inter = execute_plan(
            prof, cluster,
            interleaved_straight_plan(model, cluster.devices, m, m, 2),
            warmup_policy="PB",
        )
        assert inter.iteration_time < plain.iteration_time

    def test_persistent_memory_accumulates_per_device(self, setup):
        model, cluster, prof = setup
        plan = interleaved_straight_plan(model, cluster.devices, 4, 4, 2)
        res = execute_plan(prof, cluster, plan)
        # Each device holds two chunks' states: final residual memory equals
        # the sum of both stages' persistent bytes.
        from repro.runtime.executor import PipelineExecutor

        ex = PipelineExecutor(prof, cluster, plan)
        expected = ex.stage_mem[0].persistent_bytes + ex.stage_mem[4].persistent_bytes
        assert res.memory.final("gpu:0") == pytest.approx(expected)

"""Unit tests for the stage memory model."""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import amoebanet36, uniform_model
from repro.runtime.memory import MemoryModel, OutOfMemoryError, StageMemory


def plan_for(model, cluster, split=None, m=4, gbs=8):
    d = cluster.devices
    if split is None:
        stages = [Stage(0, model.num_layers, tuple(d))]
    else:
        stages = [Stage(0, split, (d[0],)), Stage(split, model.num_layers, (d[1],))]
    return ParallelPlan(model, stages, gbs, m)


class TestStageMemory:
    def _sm(self, persistent=4.0, full=2.0, ckpt=0.5, cap=16.0, rc=False):
        return StageMemory(
            persistent_bytes=persistent,
            full_activation_bytes=full,
            checkpoint_bytes=ckpt,
            capacity_bytes=cap,
            recompute=rc,
        )

    def test_per_microbatch_without_recompute(self):
        assert self._sm().per_microbatch_bytes == 2.0
        assert self._sm().transient_backward_bytes == 0.0

    def test_per_microbatch_with_recompute(self):
        sm = self._sm(rc=True)
        assert sm.per_microbatch_bytes == 0.5
        assert sm.transient_backward_bytes == 1.5

    def test_max_resident(self):
        # (16 - 4) / 2 = 6 micro-batches.
        assert self._sm().max_resident_micro_batches() == 6

    def test_max_resident_with_recompute_higher(self):
        sm = self._sm(rc=True)
        # (16 - 4 - 1.5) / 0.5 = 21.
        assert sm.max_resident_micro_batches() == 21

    def test_zero_when_persistent_exceeds_capacity(self):
        assert self._sm(persistent=17.0).max_resident_micro_batches() == 0

    def test_peak_bytes(self):
        sm = self._sm()
        assert sm.peak_bytes(3) == 4.0 + 3 * 2.0
        rc = self._sm(rc=True)
        assert rc.peak_bytes(3) == 4.0 + 3 * 0.5 + 1.5


class TestMemoryModel:
    def test_recompute_reduces_per_mb(self):
        m = uniform_model("u", 6, 1e9, 1_000_000, 1e7, stored_bytes=5e7, profile_batch=2)
        c = config_b(2)
        prof = profile_model(m)
        plan = plan_for(m, c, split=3)
        base = MemoryModel(prof, plan, recompute=False).stage_memory(1)
        rc = MemoryModel(prof, plan, recompute=True).stage_memory(1)
        assert rc.per_microbatch_bytes < base.per_microbatch_bytes
        assert rc.max_resident_micro_batches() >= base.max_resident_micro_batches()

    def test_checkpoint_is_boundary_activation(self):
        m = uniform_model("u", 6, 1e9, 1000, 2e6, stored_bytes=1e7, profile_batch=2)
        c = config_b(2)
        prof = profile_model(m)
        plan = plan_for(m, c, split=3, m=4, gbs=8)
        sm = MemoryModel(prof, plan, recompute=True).stage_memory(1)
        # Stage 1's checkpoint = boundary activation at split 3, one
        # micro-batch (2 samples), one replica.
        assert sm.checkpoint_bytes == pytest.approx(2e6 * 2)

    def test_oom_detection(self):
        m = amoebanet36()
        c = config_b(1)
        prof = profile_model(m)
        plan = ParallelPlan(m, [Stage(0, m.num_layers, (c.device(0),))], 1, 1)
        with pytest.raises(OutOfMemoryError):
            MemoryModel(prof, plan).max_in_flight()

    def test_amoebanet_fits_on_two_devices(self):
        # Paper: "we extend to two V100s where batch size = 1 just works".
        m = amoebanet36()
        c = config_b(2)
        prof = profile_model(m)
        # Split chosen near the planner's balance point.
        plan = ParallelPlan(
            m, [Stage(0, 26, (c.device(0),)), Stage(26, 38, (c.device(1),))], 1, 1
        )
        d = MemoryModel(prof, plan, recompute=True).max_in_flight()
        assert all(x >= 1 for x in d)

"""Property-based tests: checkpointing and memory-accounting invariants.

Two DAPPLE memory claims, checked on randomized inputs:

* re-computation (§VI-E) trades compute for memory — at any in-flight
  depth it must never *increase* a stage's peak, nor shrink the number of
  micro-batches a device can hold;
* the simulator's :class:`MemoryTimeline` must agree exactly with the
  closed-form :class:`StageMemory` accounting
  (``persistent + resident·per_mb + transient``) on arbitrary valid 1F1B
  interleaves, and stay within the ``Ki``-derived ``peak_bytes`` bound.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.generators import random_case, random_schedule
from repro.core.scheduler import max_resident_micro_batches
from repro.runtime import execute_plan
from repro.runtime.memory import MemoryModel, StageMemory
from repro.sim.engine import MemEffect, Op, Simulator, TaskGraph

RECOMPUTE = ("boundary", "sqrt")


class TestRecomputeNeverIncreasesPeak:
    @given(seed=st.integers(0, 400), k=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_stage_peak_monotone_in_strategy(self, seed, k):
        case = random_case(seed)
        base = MemoryModel(case.profile, case.plan, recompute="none")
        for strategy in RECOMPUTE:
            model = MemoryModel(case.profile, case.plan, recompute=strategy)
            for i in range(case.plan.num_stages):
                b = base.stage_memory(i)
                c = model.stage_memory(i)
                assert c.peak_bytes(k) <= b.peak_bytes(k) * (1 + 1e-9), (
                    f"seed={seed} stage={i} {strategy}: "
                    f"{c.peak_bytes(k):.3e} > {b.peak_bytes(k):.3e} at k={k}"
                )

    @given(seed=st.integers(0, 400))
    @settings(max_examples=50, deadline=None)
    def test_recompute_never_shrinks_capacity(self, seed):
        # If a device can hold at least one micro-batch without recompute,
        # checkpointing can only raise (or keep) its in-flight capacity D.
        case = random_case(seed)
        base = MemoryModel(case.profile, case.plan, recompute="none")
        for strategy in RECOMPUTE:
            model = MemoryModel(case.profile, case.plan, recompute=strategy)
            for i, (sn, sc) in enumerate(zip(base.all_stages(), model.all_stages())):
                d_none = sn.max_resident_micro_batches()
                if d_none >= 1:
                    assert sc.max_resident_micro_batches() >= d_none, (
                        f"seed={seed} stage={i}: {strategy} shrank D"
                    )

    @pytest.mark.parametrize("strategy", RECOMPUTE)
    def test_execution_peak_never_above_none(self, strategy):
        # Same plan, same schedule (enforce_memory=False caps warm-up at M
        # for every strategy): the simulated per-device peak with recompute
        # must not exceed the no-recompute peak.
        for seed in (0, 3, 11, 27):
            case = random_case(seed)
            ref = execute_plan(
                case.profile, case.cluster, case.plan,
                warmup_policy=case.warmup_policy, recompute=False,
                enforce_memory=False,
            )
            ck = execute_plan(
                case.profile, case.cluster, case.plan,
                warmup_policy=case.warmup_policy, recompute=strategy,
                enforce_memory=False,
            )
            for dev in ref.memory.devices():
                assert ck.memory.peak(dev) <= ref.memory.peak(dev) * (1 + 1e-9), (
                    f"seed={seed} {strategy}: peak rose on {dev}"
                )


def _single_stage_graph(sm: StageMemory, tasks):
    """One device running ``tasks`` in order, with the executor's memory
    idiom: activations live from F-start to B-end, transient spans B."""
    dev = "gpu:0"
    g = TaskGraph()
    init = Op("init", 0.0)
    init.mem_effects.append(MemEffect(dev, sm.persistent_bytes))
    g.add(init)
    prev = "init"
    for t in tasks:
        name = f"{t.kind}/m{t.micro_batch}"
        op = Op(name, 1.0, resources=(dev,))
        if t.kind == "F":
            op.mem_effects.append(MemEffect(dev, sm.per_microbatch_bytes))
        else:
            tr = sm.transient_backward_bytes
            if tr > 0:
                op.mem_effects.append(MemEffect(dev, tr))
                op.mem_effects.append(MemEffect(dev, -tr, at_end=True))
            op.mem_effects.append(
                MemEffect(dev, -sm.per_microbatch_bytes, at_end=True)
            )
        g.add(op)
        g.add_dep(prev, name)
        prev = name
    return g, dev


def _closed_form_peak(sm: StageMemory, tasks) -> float:
    live, peak = 0, sm.persistent_bytes
    for t in tasks:
        if t.kind == "F":
            live += 1
            peak = max(peak, sm.persistent_bytes + live * sm.per_microbatch_bytes)
        else:
            peak = max(
                peak,
                sm.persistent_bytes
                + live * sm.per_microbatch_bytes
                + sm.transient_backward_bytes,
            )
            live -= 1
    return peak


class TestTimelineMatchesAccounting:
    @given(
        m=st.integers(1, 10),
        seed=st.integers(0, 10_000),
        persistent=st.floats(0.0, 1e9),
        full=st.floats(1.0, 1e9),
        ckpt_frac=st.floats(0.0, 1.0),
        recompute=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_simulated_peak_matches_closed_form(
        self, m, seed, persistent, full, ckpt_frac, recompute
    ):
        sm = StageMemory(
            persistent_bytes=persistent,
            full_activation_bytes=full,
            checkpoint_bytes=full * ckpt_frac,
            capacity_bytes=float("inf"),
            recompute=recompute,
        )
        tasks = random_schedule(m, random.Random(seed))
        g, dev = _single_stage_graph(sm, tasks)
        timeline = Simulator(g).run().memory

        want = _closed_form_peak(sm, tasks)
        assert timeline.peak(dev) == pytest.approx(want, rel=1e-9, abs=1e-6)
        # Conservation: every activation and transient is released.
        assert timeline.final(dev) == pytest.approx(persistent, rel=1e-9, abs=1e-6)
        # And the whole run stays within the Ki-derived bound (§III-B).
        k = max_resident_micro_batches(tasks)
        assert want <= sm.peak_bytes(k) * (1 + 1e-9) + 1e-6

"""PipelineReport vs the closed form E = 1/(1+P) across (S, M, alpha) grids.

The paper's §II-A efficiency model predicts ``E = 1/(1+P)`` with
``P = (1+alpha)(S-1)/M``.  These tests sweep stage counts, micro-batch
counts, and (analytically) the comm ratio, checking that the simulator's
*measured* efficiency tracks the closed form and that the per-device
busy/idle accounting is internally consistent (busy + idle == makespan for
every device).
"""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.runtime.analysis import analyze, closed_form_efficiency


def straight_exec(num_stages, m, act=1e4):
    """An S-stage straight pipeline of a uniform model, negligible comm."""
    model = uniform_model(
        "grid", num_stages, 9e9, 1_000_000, act, profile_batch=1
    )
    cluster = config_b(num_stages)
    prof = profile_model(model)
    stages = [Stage(i, i + 1, (cluster.device(i),)) for i in range(num_stages)]
    plan = ParallelPlan(model, stages, m, m)
    return execute_plan(prof, cluster, plan, warmup_policy="PB")


class TestEfficiencyGrid:
    @pytest.mark.parametrize("num_stages", [2, 4, 8])
    @pytest.mark.parametrize("m", [8, 32])
    def test_measured_tracks_closed_form(self, num_stages, m):
        """With alpha ~ 0 the simulator must reproduce 1/(1+(S-1)/M)."""
        report = analyze(straight_exec(num_stages, m))
        assert report.predicted_efficiency == closed_form_efficiency(
            num_stages, m, 0.0
        )
        assert report.measured_efficiency == pytest.approx(
            report.predicted_efficiency, rel=0.15
        )

    @pytest.mark.parametrize("num_stages", [2, 4])
    def test_efficiency_monotone_in_m(self, num_stages):
        effs = [
            analyze(straight_exec(num_stages, m)).measured_efficiency
            for m in (4, 16, 64)
        ]
        assert effs == sorted(effs)

    def test_efficiency_monotone_in_stages(self):
        effs = [
            analyze(straight_exec(s, 16)).measured_efficiency
            for s in (2, 4, 8)
        ]
        assert effs == sorted(effs, reverse=True)

    @pytest.mark.parametrize("alpha", [0.0, 0.25, 0.5, 1.0])
    def test_alpha_grid_closed_form(self, alpha):
        """The analytical E falls as the comm ratio grows, and the measured
        report carries whatever alpha the caller supplies."""
        e = closed_form_efficiency(4, 16, alpha)
        assert e == 1.0 / (1.0 + (1.0 + alpha) * 3 / 16)
        report = analyze(straight_exec(4, 16), acr=alpha)
        assert report.acr == alpha
        assert report.predicted_efficiency == e


class TestBusyIdleAccounting:
    @pytest.mark.parametrize("num_stages,m", [(2, 8), (4, 16), (8, 32)])
    def test_busy_plus_idle_equals_makespan(self, num_stages, m):
        report = analyze(straight_exec(num_stages, m))
        assert len(report.devices) == num_stages
        for d in report.devices:
            assert d.busy + d.idle == pytest.approx(report.makespan)
            assert 0.0 <= d.utilization <= 1.0

    def test_total_busy_bounded_by_device_hours(self):
        report = analyze(straight_exec(4, 16))
        total_busy = sum(d.busy for d in report.devices)
        assert total_busy <= len(report.devices) * report.makespan

    def test_bubble_is_idle_share(self):
        report = analyze(straight_exec(4, 16))
        mean_util = sum(d.utilization for d in report.devices) / len(
            report.devices
        )
        assert report.bubble_fraction == pytest.approx(1.0 - mean_util)

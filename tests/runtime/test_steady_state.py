"""Tests for multi-iteration (steady-state) simulation."""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan, simulate_iterations


@pytest.fixture
def setup():
    model = uniform_model("u", 8, 9e9, 1_000_000, 1e6, profile_batch=2)
    cluster = config_b(4)
    prof = profile_model(model)
    stages = [Stage(2 * i, 2 * i + 2, (cluster.device(i),)) for i in range(4)]
    plan = ParallelPlan(model, stages, 16, 8)
    return prof, cluster, plan


class TestSyncIterations:
    def test_total_scales_with_iterations(self, setup):
        prof, cluster, plan = setup
        r2 = simulate_iterations(prof, cluster, plan, num_iterations=2)
        r4 = simulate_iterations(prof, cluster, plan, num_iterations=4)
        assert r4.total_time > r2.total_time
        assert len(r4.iteration_ends) == 4
        assert r4.iteration_ends == sorted(r4.iteration_ends)

    def test_sync_steady_equals_single_iteration(self, setup):
        """Synchronous training cannot overlap iterations: stage 0's weight
        update is the last drain event of each iteration."""
        prof, cluster, plan = setup
        single = execute_plan(prof, cluster, plan).iteration_time
        multi = simulate_iterations(prof, cluster, plan, num_iterations=4)
        assert multi.steady_iteration_time == pytest.approx(single, rel=0.01)
        assert multi.warmup_overhead == pytest.approx(1.0, rel=0.01)

    def test_single_iteration_allowed(self, setup):
        prof, cluster, plan = setup
        r = simulate_iterations(prof, cluster, plan, num_iterations=1)
        assert r.steady_iteration_time == r.first_iteration_time

    def test_zero_iterations_rejected(self, setup):
        prof, cluster, plan = setup
        with pytest.raises(ValueError):
            simulate_iterations(prof, cluster, plan, num_iterations=0)


class TestAsyncIterations:
    def test_async_overlaps_iterations(self, setup):
        """PipeDream-style async pipelines overlap iterations — the
        throughput-vs-staleness trade-off motivating synchronous DAPPLE."""
        prof, cluster, plan = setup
        sync = simulate_iterations(prof, cluster, plan, num_iterations=6, sync=True)
        async_ = simulate_iterations(prof, cluster, plan, num_iterations=6, sync=False)
        assert async_.steady_iteration_time < sync.steady_iteration_time * 0.9
        assert async_.steady_throughput > sync.steady_throughput

    def test_async_memory_semantics_unchanged_per_iteration(self, setup):
        prof, cluster, plan = setup
        r = simulate_iterations(prof, cluster, plan, num_iterations=3, sync=False)
        # All ops of all iterations executed.
        f_ops = [e for e in r.trace.events if "/F/" in e.name]
        assert len(f_ops) == 3 * 4 * 8  # iterations x stages x micro-batches

"""Tests for straggler (slow-device) injection."""

import pytest

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan


@pytest.fixture
def setup():
    model = uniform_model("u", 8, 9e9, 1_000_000, 1e6, profile_batch=2)
    cluster = config_b(4)
    prof = profile_model(model)
    return model, cluster, prof


def replicated_plan(model, cluster, m=8):
    d = cluster.devices
    return ParallelPlan(
        model,
        [Stage(0, 4, (d[0], d[1])), Stage(4, 8, (d[2], d[3]))],
        2 * m,
        m,
    )


class TestStragglerInjection:
    def test_no_slowdown_is_baseline(self, setup):
        model, cluster, prof = setup
        plan = replicated_plan(model, cluster)
        base = execute_plan(prof, cluster, plan)
        same = execute_plan(prof, cluster, plan, device_slowdown={})
        assert base.iteration_time == pytest.approx(same.iteration_time)

    def test_one_straggler_slows_whole_pipeline(self, setup):
        """Synchronous slicing: a single 2x-slow replica gates every
        micro-batch of its stage (the tail effect of sync training)."""
        model, cluster, prof = setup
        plan = replicated_plan(model, cluster)
        base = execute_plan(prof, cluster, plan)
        slow = execute_plan(prof, cluster, plan, device_slowdown={0: 2.0})
        assert slow.iteration_time > base.iteration_time * 1.3

    def test_straggler_on_light_stage_hides_partially(self, setup):
        model, cluster, prof = setup
        d = cluster.devices
        # Stage 1 is 3x lighter; a straggler there hides in stage 0's shadow.
        plan = ParallelPlan(
            model, [Stage(0, 6, (d[0], d[1])), Stage(6, 8, (d[2], d[3]))], 16, 8
        )
        base = execute_plan(prof, cluster, plan).iteration_time
        slow_heavy = execute_plan(
            prof, cluster, plan, device_slowdown={0: 1.5}
        ).iteration_time
        slow_light = execute_plan(
            prof, cluster, plan, device_slowdown={2: 1.5}
        ).iteration_time
        assert slow_light - base < slow_heavy - base

    def test_slowdown_below_one_rejected(self, setup):
        model, cluster, prof = setup
        plan = replicated_plan(model, cluster)
        with pytest.raises(ValueError):
            execute_plan(prof, cluster, plan, device_slowdown={0: 0.5})

    def test_uniform_slowdown_scales_iteration(self, setup):
        model, cluster, prof = setup
        plan = replicated_plan(model, cluster)
        base = execute_plan(prof, cluster, plan)
        all_slow = execute_plan(
            prof, cluster, plan, device_slowdown={i: 2.0 for i in range(4)}
        )
        # Compute doubles; comm unchanged — so between 1x and 2x.
        ratio = all_slow.iteration_time / base.iteration_time
        assert 1.5 < ratio <= 2.01

"""``--schedule`` plumbed through every CLI surface via the registry."""

import pytest

from repro.cli import build_parser, main
from repro.schedules import schedule_names

SMALL = ["--model", "gnmt16", "--config", "B", "--devices", "4", "--gbs", "16"]


class TestRunCommand:
    @pytest.mark.parametrize("spec", ["dapple", "gpipe", "zb2bp", "1f1b"])
    def test_run_accepts_registry_specs(self, capsys, spec):
        assert main(["run", *SMALL, "--schedule", spec]) == 0
        assert "iteration" in capsys.readouterr().out

    def test_run_accepts_params(self, capsys):
        assert main(["run", *SMALL, "--schedule", "zb2bp:w=0.4"]) == 0
        capsys.readouterr()

    def test_unknown_schedule_exits_2(self, capsys):
        assert main(["run", *SMALL, "--schedule", "zigzag"]) == 2
        err = capsys.readouterr().err
        assert "zigzag" in err
        for name in schedule_names():
            assert name in err

    def test_bad_param_exits_2(self, capsys):
        assert main(["run", *SMALL, "--schedule", "dapple:beam=3"]) == 2
        capsys.readouterr()


class TestHelpListsRegistry:
    @pytest.mark.parametrize("cmd", ["run", "plan", "check", "faults"])
    def test_help_names_every_schedule(self, cmd):
        parser = build_parser()
        # The subparser help text is rendered from the registry, so a
        # newly registered schedule shows up without touching the CLI.
        sub = next(
            a for a in parser._actions
            if getattr(a, "choices", None) and cmd in (a.choices or {})
        )
        help_text = sub.choices[cmd].format_help()
        assert "--schedule" in help_text
        for name in schedule_names():
            assert name in help_text


class TestPlanCommand:
    def test_plan_simulates_under_schedule(self, capsys):
        assert main(["plan", *SMALL, "--schedule", "zb2bp"]) == 0
        out = capsys.readouterr().out
        assert "simulated:" in out and "zb2bp" in out

    def test_plan_without_schedule_unchanged(self, capsys):
        assert main(["plan", *SMALL]) == 0
        assert "simulated:" not in capsys.readouterr().out


class TestCheckCommand:
    def test_check_single_schedule(self, capsys):
        assert main(["check", *SMALL, "--schedule", "zb2bp"]) == 0
        out = capsys.readouterr().out
        assert "zb2bp" in out

    def test_check_unknown_schedule_exits_2(self, capsys):
        assert main(["check", *SMALL, "--schedule", "nope"]) == 2
        capsys.readouterr()

"""Differential conformance: the IR against the legacy scheduler and the
full invariant battery, over seeded random pipeline instances.

Two properties, each run over :mod:`repro.check.generators` cases:

1. **Bit-identity** — ``Dapple1F1BSchedule`` lowers to exactly the task
   stream ``repro.core.scheduler.dapple_schedule`` emits, for every
   random ``(S, M, policy, D)`` tuple.  This is the refactor's safety
   net: the executor now consumes the IR, so any drift here would change
   every committed result table.
2. **Battery** — every registered schedule, executed on a generated case,
   passes ``check_execution`` with zero violations on both simulation
   engines.

The tier-1 leg samples a small fixed seed range; the ``slow`` leg widens
it and adds hypothesis-driven search with shrinking.
"""

import pytest

from repro.check import verify_execution
from repro.check.generators import generate_cases, random_case
from repro.core.scheduler import dapple_schedule
from repro.schedules import Dapple1F1BSchedule, schedule_names

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


def _ir_equals_legacy(s, m, policy, cap):
    ir = Dapple1F1BSchedule(s, m, warmup_policy=policy, max_in_memory=cap)
    legacy = dapple_schedule(s, m, policy=policy, max_in_memory=cap)
    assert ir.to_stage_schedule() == legacy, (
        f"IR stream diverged from legacy dapple_schedule at "
        f"S={s} M={m} policy={policy} D={cap}"
    )


class TestDappleBitIdentity:
    @pytest.mark.parametrize("policy", ["PA", "PB"])
    def test_exhaustive_small(self, policy):
        for s in range(1, 7):
            for m in range(1, 13):
                for cap in (None, 1, 2, s, m):
                    _ir_equals_legacy(s, m, policy, cap)

    def test_generated_cases(self):
        for case in generate_cases(25, base_seed=100):
            plan = case.plan
            _ir_equals_legacy(
                plan.num_stages, plan.num_micro_batches, case.warmup_policy, None
            )

    @needs_hypothesis
    def test_property(self):
        @settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(
            s=st.integers(min_value=1, max_value=10),
            m=st.integers(min_value=1, max_value=24),
            policy=st.sampled_from(["PA", "PB"]),
            cap=st.one_of(st.none(), st.integers(min_value=1, max_value=24)),
        )
        def prop(s, m, policy, cap):
            _ir_equals_legacy(s, m, policy, cap)

        prop()

    @pytest.mark.slow
    @needs_hypothesis
    def test_property_wide(self):
        @settings(max_examples=400, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(
            s=st.integers(min_value=1, max_value=24),
            m=st.integers(min_value=1, max_value=64),
            policy=st.sampled_from(["PA", "PB"]),
            cap=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
        )
        def prop(s, m, policy, cap):
            _ir_equals_legacy(s, m, policy, cap)

        prop()


def _specs_for(case):
    """Registry specs executable on this generated case's plan."""
    specs = []
    for name in schedule_names():
        if name == "interleaved":
            # Generated plans are not interleaved-placed; the interleaved
            # battery runs on purpose-built plans in the executor tests.
            continue
        specs.append(name)
    return specs


def _battery(case, spec, engine):
    report = verify_execution(
        case.profile, case.cluster, case.plan,
        schedule=spec, warmup_policy=case.warmup_policy, engine=engine,
    )
    assert report.ok, f"{spec} on {case!r}:\n{report.render()}"
    assert "bw-order" in report.checks
    assert "ir-high-water" in report.checks


class TestRegisteredSchedulesConform:
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_generated_cases_all_schedules(self, engine):
        for case in generate_cases(6, base_seed=0):
            for spec in _specs_for(case):
                _battery(case, spec, engine)

    def test_zb2bp_fraction_sweep(self):
        case = random_case(3)
        for w in (0.25, 0.5, 0.75):
            _battery(case, f"zb2bp:w={w}", "compiled")

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_generated_cases_wide(self, engine):
        for case in generate_cases(40, base_seed=1000):
            for spec in _specs_for(case):
                _battery(case, spec, engine)

    @pytest.mark.slow
    @needs_hypothesis
    def test_property_battery(self):
        from repro.check.generators import case_strategy

        @settings(max_examples=30, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow,
                                         HealthCheck.data_too_large])
        @given(case=case_strategy(max_seed=5000))
        def prop(case):
            for spec in _specs_for(case):
                _battery(case, spec, "compiled")

        prop()

"""The executor × schedule registry seam: bit-identity with the legacy
path, spec routing, per-schedule execution semantics."""

import pytest

from repro.check.generators import generate_cases
from repro.cluster.configs import config_by_name
from repro.core.plan import interleaved_straight_plan
from repro.core.profiler import profile_model
from repro.core.scheduler import dapple_schedule
from repro.models.graph import uniform_model
from repro.runtime.executor import PipelineExecutor
from repro.schedules import (
    Dapple1F1BSchedule,
    PipeSchedule,
    schedule_names,
)


@pytest.fixture(scope="module")
def small():
    model = uniform_model(
        name="exec-probe",
        num_layers=8,
        flops_per_layer=2e9,
        params_per_layer=100_000,
        activation_bytes=1e6,
    )
    cluster = config_by_name("B", num_devices=4)
    prof = profile_model(model)
    from repro.core.plan import ParallelPlan, Stage

    devs = cluster.devices
    plan = ParallelPlan(
        model=model,
        stages=[Stage(2 * i, 2 * i + 2, (devs[i],)) for i in range(4)],
        global_batch_size=8,
        num_micro_batches=8,
    )
    return prof, cluster, plan


def _rows(res):
    return sorted(
        (name, round(start, 12), round(end, 12))
        for name, start, end, _res, _tags in res.trace.iter_rows()
    )


class TestBitIdentity:
    def test_spec_equals_legacy_list(self, small):
        """'dapple' spec vs the raw legacy StageSchedule: same graph,
        same trace, same makespan."""
        prof, cluster, plan = small
        by_spec = PipelineExecutor(prof, cluster, plan, schedule="dapple").run()
        legacy = dapple_schedule(plan.num_stages, plan.num_micro_batches)
        by_list = PipelineExecutor(prof, cluster, plan, schedule=legacy).run()
        assert by_spec.iteration_time == by_list.iteration_time
        assert _rows(by_spec) == _rows(by_list)

    def test_alias_is_identical(self, small):
        prof, cluster, plan = small
        a = PipelineExecutor(prof, cluster, plan, schedule="dapple").run()
        b = PipelineExecutor(prof, cluster, plan, schedule="1f1b").run()
        assert _rows(a) == _rows(b)

    def test_instance_is_identical(self, small):
        prof, cluster, plan = small
        sched = Dapple1F1BSchedule(plan.num_stages, plan.num_micro_batches)
        a = PipelineExecutor(prof, cluster, plan, schedule="dapple").run()
        b = PipelineExecutor(prof, cluster, plan, schedule=sched).run()
        assert _rows(a) == _rows(b)

    def test_generated_cases_identity(self):
        for case in generate_cases(8, base_seed=42):
            plan = case.plan
            cap = min(
                PipelineExecutor(
                    case.profile, case.cluster, plan, schedule="gpipe",
                    enforce_memory=False,
                ).memory_model.max_in_flight()
            )
            spec = PipelineExecutor(
                case.profile, case.cluster, plan,
                schedule="dapple", warmup_policy=case.warmup_policy,
            ).run()
            legacy = dapple_schedule(
                plan.num_stages, plan.num_micro_batches,
                policy=case.warmup_policy, max_in_memory=cap,
            )
            raw = PipelineExecutor(
                case.profile, case.cluster, plan, schedule=legacy,
            ).run()
            assert spec.iteration_time == raw.iteration_time, case
            assert _rows(spec) == _rows(raw), case


class TestScheduleSemantics:
    def test_zb2bp_no_slower_than_dapple(self, small):
        prof, cluster, plan = small
        da = PipelineExecutor(prof, cluster, plan, schedule="dapple").run()
        zb = PipelineExecutor(prof, cluster, plan, schedule="zb2bp").run()
        assert zb.iteration_time <= da.iteration_time

    def test_zb2bp_trace_has_split_kinds(self, small):
        prof, cluster, plan = small
        res = PipelineExecutor(prof, cluster, plan, schedule="zb2bp").run()
        names = [row[0] for row in res.trace.iter_rows()]
        m = plan.num_micro_batches
        assert sum(n.startswith("BI/") for n in names) == plan.num_stages * m
        assert sum(n.startswith("BW/") for n in names) == plan.num_stages * m
        assert not any(n.startswith("B/") for n in names)

    def test_result_carries_pipe_schedule(self, small):
        prof, cluster, plan = small
        res = PipelineExecutor(prof, cluster, plan, schedule="zb2bp:w=0.4").run()
        assert isinstance(res.pipe_schedule, PipeSchedule)
        assert res.pipe_schedule.name == "zb2bp"
        assert res.pipe_schedule.backward_weight_fraction == 0.4

    def test_interleaved_runs_on_interleaved_plan(self):
        model = uniform_model(
            name="exec-int", num_layers=8, flops_per_layer=2e9,
            params_per_layer=100_000, activation_bytes=1e6,
        )
        cluster = config_by_name("B", num_devices=2)
        prof = profile_model(model)
        plan = interleaved_straight_plan(
            model, cluster.devices, 4, 4, virtual_per_device=2
        )
        res = PipelineExecutor(
            prof, cluster, plan, schedule="interleaved:v=2"
        ).run()
        assert res.iteration_time > 0
        assert res.pipe_schedule.num_virtual_stages() == 4

    def test_interleaved_rejects_straight_plan(self, small):
        prof, cluster, plan = small
        with pytest.raises(ValueError, match="round-robin|interleaved"):
            PipelineExecutor(prof, cluster, plan, schedule="interleaved:v=2")


class TestErrorRouting:
    def test_unknown_schedule_lists_registry_names(self, small):
        prof, cluster, plan = small
        with pytest.raises(ValueError) as exc:
            PipelineExecutor(prof, cluster, plan, schedule="zigzag")
        msg = str(exc.value)
        assert "zigzag" in msg
        for name in schedule_names():
            assert name in msg, f"error message should list {name!r}: {msg}"

    def test_bad_param_value_rejected(self, small):
        prof, cluster, plan = small
        with pytest.raises(ValueError):
            PipelineExecutor(prof, cluster, plan, schedule="zb2bp:w=1.5")

    def test_mismatched_instance_rejected(self, small):
        prof, cluster, plan = small
        wrong = Dapple1F1BSchedule(plan.num_stages + 1, plan.num_micro_batches)
        with pytest.raises(ValueError):
            PipelineExecutor(prof, cluster, plan, schedule=wrong)

"""Golden-result regression for the schedule-bubble table.

Same contract as ``tests/check/test_golden_results.py``: the committed
snapshot under ``tests/golden/`` must reproduce byte-for-byte, and the
committed full ``results/schedule_bubbles.txt`` must still satisfy the
table's headline claim (ZB-2BP strictly below 1F1B somewhere) so a
simulator change that silently erases the paper-level conclusion fails
here even if someone regenerates the snapshot.
"""

from pathlib import Path

import pytest

GOLDEN = Path(__file__).resolve().parent.parent / "golden"
RESULTS = Path(__file__).resolve().parent.parent.parent / "results"


def _cells(line: str) -> list[str]:
    return [c.strip() for c in line.split("|")]


@pytest.fixture(scope="module")
def bubbles_subset() -> str:
    from repro.experiments import schedule_bubbles as sb

    pts = [sb.point("bert48", "A", s, devices=8, gbs=8) for s in sb.SCHEDULES]
    return sb.format_results(pts)


class TestGoldenSnapshot:
    def test_reproduces_byte_for_byte(self, bubbles_subset):
        assert bubbles_subset + "\n" == (
            GOLDEN / "schedule_bubbles_bert48_A_8.txt"
        ).read_text()

    def test_rerun_is_deterministic(self, bubbles_subset):
        from repro.experiments import schedule_bubbles as sb

        again = sb.format_results(
            [sb.point("bert48", "A", s, devices=8, gbs=8) for s in sb.SCHEDULES]
        )
        assert again == bubbles_subset

    def test_every_schedule_has_a_row(self, bubbles_subset):
        from repro.experiments import schedule_bubbles as sb

        for spec in sb.SCHEDULES:
            assert any(
                _cells(line)[1:2] == [spec]
                for line in bubbles_subset.splitlines()
                if "|" in line
            ), f"no row for {spec}"


class TestCommittedResults:
    @pytest.fixture(scope="class")
    def table(self) -> str:
        path = RESULTS / "schedule_bubbles.txt"
        assert path.exists(), "results/schedule_bubbles.txt not committed"
        return path.read_text()

    def _bubble(self, table, config, schedule) -> float:
        for line in table.splitlines():
            if "|" not in line:
                continue
            cells = _cells(line)
            if cells[:2] == [config, schedule] and cells[4] not in ("-", "bubble"):
                return float(cells[4])
        raise AssertionError(f"no row for ({config}, {schedule})")

    def test_zb2bp_beats_1f1b_somewhere(self, table):
        """The ISSUE's acceptance bar, pinned against the committed table."""
        wins = [
            cfg for cfg in ("A", "B", "C")
            if self._bubble(table, cfg, "zb2bp")
            < self._bubble(table, cfg, "dapple")
        ]
        assert wins, "ZB-2BP never strictly below 1F1B in committed results"

    def test_gpipe_bubble_at_least_1f1b_memory(self, table):
        # GPipe must show its defining cost somewhere in the table: the
        # all-forwards flush holds every micro-batch resident.
        for line in table.splitlines():
            if "|" in line and _cells(line)[1] == "gpipe":
                assert "GiB" in line
                return
        raise AssertionError("no gpipe rows in committed results")

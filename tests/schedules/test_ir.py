"""The schedule IR itself: task vocabulary, streams, lowering, registry."""

import pytest

from repro.core.scheduler import dapple_schedule, gpipe_schedule
from repro.schedules import (
    COMM_KINDS,
    COMPUTE_KINDS,
    Backward,
    BackwardInput,
    BackwardWeight,
    Dapple1F1BSchedule,
    Forward,
    GPipeSchedule,
    Interleaved1F1BSchedule,
    RecvAct,
    RecvGrad,
    SendAct,
    SendGrad,
    UnknownScheduleError,
    ZeroBubble2BPSchedule,
    build_schedule,
    parse_schedule_spec,
    schedule_names,
    task_from_kind,
)


class TestTaskVocabulary:
    def test_kinds(self):
        assert Forward(0).kind == "F"
        assert Backward(0).kind == "B"
        assert BackwardInput(0).kind == "BI"
        assert BackwardWeight(0).kind == "BW"
        assert COMPUTE_KINDS == {"F", "B", "BI", "BW"}
        assert {RecvAct(0).kind, SendAct(0).kind,
                RecvGrad(0).kind, SendGrad(0).kind} == COMM_KINDS

    def test_compute_flag(self):
        assert Forward(0).compute and BackwardWeight(0).compute
        assert not RecvAct(0).compute and not SendGrad(0).compute

    def test_tasks_are_frozen_values(self):
        assert Forward(3) == Forward(3)
        assert Forward(3) != Backward(3)
        with pytest.raises(Exception):
            Forward(3).micro_batch = 4

    def test_task_from_kind_round_trip(self):
        for kind in sorted(COMPUTE_KINDS | COMM_KINDS):
            assert task_from_kind(kind, 5).kind == kind
        with pytest.raises(ValueError):
            task_from_kind("X", 0)


class TestStreamsAndLowering:
    def test_dapple_lowering_matches_legacy(self):
        sched = Dapple1F1BSchedule(4, 8)
        legacy = dapple_schedule(4, 8)
        assert sched.to_stage_schedule() == legacy

    def test_gpipe_lowering_matches_legacy(self):
        sched = GPipeSchedule(3, 6)
        assert sched.to_stage_schedule() == gpipe_schedule(3, 6)

    def test_steps_interpolates_comm_markers(self):
        sched = Dapple1F1BSchedule(2, 2)
        kinds = [t.kind for t in sched.steps(0)]
        # Stage 0 receives nothing forward, sends activations, receives
        # gradients; it never sends gradients (no upstream stage).
        assert "send_act" in kinds and "recv_grad" in kinds
        assert "recv_act" not in kinds and "send_grad" not in kinds
        last = [t.kind for t in sched.steps(1)]
        assert "recv_act" in last and "send_grad" in last
        assert "send_act" not in last

    def test_zb2bp_splits_backward(self):
        sched = ZeroBubble2BPSchedule(2, 4)
        kinds = [t.kind for t in sched.stage_tasks(1)]
        assert kinds.count("BI") == 4 and kinds.count("BW") == 4
        assert "B" not in kinds
        # Per micro-batch, BI precedes BW.
        for mb in range(4):
            tasks = list(sched.stage_tasks(1))
            bi = next(i for i, t in enumerate(tasks)
                      if t.kind == "BI" and t.micro_batch == mb)
            bw = next(i for i, t in enumerate(tasks)
                      if t.kind == "BW" and t.micro_batch == mb)
            assert bi < bw

    def test_interleaved_virtual_stages(self):
        sched = Interleaved1F1BSchedule(2, 4, chunks=2)
        assert sched.num_stages == 4
        assert sched.num_virtual_stages() == 4
        # Each virtual stage still runs every micro-batch forward+backward.
        for s in range(4):
            kinds = [t.kind for t in sched.stage_tasks(s)]
            assert kinds.count("F") == 4 and kinds.count("B") == 4

    def test_interleaved_rejects_bad_m(self):
        with pytest.raises(ValueError, match="divisible"):
            Interleaved1F1BSchedule(2, 3, chunks=2)

    def test_validate_accepts_all(self):
        for sched in (
            Dapple1F1BSchedule(3, 5),
            GPipeSchedule(3, 5),
            ZeroBubble2BPSchedule(3, 5),
            Interleaved1F1BSchedule(2, 4, chunks=2),
        ):
            sched.validate()  # no raise

    def test_memory_high_water_monotone(self):
        # GPipe holds everything; 1F1B caps stage 0 at ~S.
        gp = GPipeSchedule(4, 8).memory_high_water()
        da = Dapple1F1BSchedule(4, 8).memory_high_water()
        assert gp == [8, 8, 8, 8]
        assert da[0] <= 4 and da[-1] == 1
        assert all(d <= g for d, g in zip(da, gp))

    def test_describe_mentions_shape(self):
        assert "BI/BW" in ZeroBubble2BPSchedule(2, 4, weight_fraction=0.4).describe()
        assert "virtual" in Interleaved1F1BSchedule(2, 4).describe()


class TestRegistry:
    def test_names_cover_library(self):
        assert set(schedule_names()) >= {"dapple", "gpipe", "interleaved", "zb2bp"}

    def test_parse_specs(self):
        assert parse_schedule_spec("dapple") == ("dapple", {})
        assert parse_schedule_spec("1f1b") == ("dapple", {})  # alias
        assert parse_schedule_spec("zb2bp:w=0.4") == ("zb2bp", {"w": 0.4})
        assert parse_schedule_spec("interleaved:v=4") == ("interleaved", {"v": 4})

    def test_unknown_schedule_lists_valid_names(self):
        with pytest.raises(UnknownScheduleError) as exc:
            parse_schedule_spec("zigzag")
        for name in schedule_names():
            assert name in str(exc.value)
        assert isinstance(exc.value, ValueError)  # CLI exit-code contract

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="param"):
            parse_schedule_spec("dapple:beam=3")

    def test_build_from_spec(self):
        from types import SimpleNamespace

        plan = SimpleNamespace(num_stages=3, num_micro_batches=6)
        sched = build_schedule("zb2bp:w=0.25", plan=plan)
        assert isinstance(sched, ZeroBubble2BPSchedule)
        assert sched.backward_weight_fraction == 0.25
        assert isinstance(build_schedule("1f1b", plan=plan), Dapple1F1BSchedule)

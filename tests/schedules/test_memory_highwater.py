"""``memory_high_water()`` must predict the simulated memory peak.

The IR declares, per stage, the maximum number of concurrently resident
micro-batch activations.  The executor turns that into bytes via
``StageMemory.peak_bytes`` — and the simulated ``MemoryTimeline`` must
agree, or the OOM gate admits plans that blow device memory (or rejects
ones that fit).  Straight one-device-per-stage plans make the mapping
exact; interleaved plans co-locate virtual stages on a device, so there
the declared waters bound the device peak from both sides.
"""

import pytest

from repro.cluster.configs import config_by_name
from repro.core.plan import ParallelPlan, Stage, interleaved_straight_plan
from repro.core.profiler import profile_model
from repro.models.graph import uniform_model
from repro.runtime.executor import PipelineExecutor
from repro.runtime.memory import MemoryModel


def _straight(num_stages=4, m=8):
    model = uniform_model(
        name="hw-probe",
        num_layers=num_stages * 2,
        flops_per_layer=1e9,
        params_per_layer=50_000,
        activation_bytes=2e6,
    )
    cluster = config_by_name("B", num_devices=num_stages)
    prof = profile_model(model)
    devs = cluster.devices
    plan = ParallelPlan(
        model=model,
        stages=[Stage(2 * i, 2 * i + 2, (devs[i],)) for i in range(num_stages)],
        global_batch_size=m,
        num_micro_batches=m,
    )
    return prof, cluster, plan


SPECS = ["dapple", "dapple:policy=PB", "gpipe", "zb2bp", "zb2bp:w=0.3"]


class TestHighWaterMatchesSimulation:
    @pytest.mark.parametrize("spec", SPECS)
    def test_straight_plan_exact(self, spec):
        prof, cluster, plan = _straight()
        ex = PipelineExecutor(prof, cluster, plan, schedule=spec)
        res = ex.run()
        waters = ex.pipe_schedule.memory_high_water()
        mm = MemoryModel(prof, plan)
        for i, stage in enumerate(plan.stages):
            sm = mm.stage_memory(i)
            predicted = sm.peak_bytes(waters[i])
            simulated = res.memory.peak(stage.devices[0].resource_key)
            assert simulated == pytest.approx(predicted, rel=1e-9), (
                f"{spec} stage {i}: declared high water {waters[i]} "
                f"predicts {predicted:.0f}B, simulation peaked at "
                f"{simulated:.0f}B"
            )

    def test_zb2bp_matches_dapple_waters(self):
        # ZB-2BP is the memory-neutral flavour: releasing activations at
        # BW (not BI) keeps the declared waters equal to 1F1B's.
        prof, cluster, plan = _straight()
        da = PipelineExecutor(prof, cluster, plan, schedule="dapple")
        zb = PipelineExecutor(prof, cluster, plan, schedule="zb2bp")
        assert zb.pipe_schedule.memory_high_water() == \
            da.pipe_schedule.memory_high_water()

    def test_gpipe_water_is_m(self):
        prof, cluster, plan = _straight(m=6)
        ex = PipelineExecutor(prof, cluster, plan, schedule="gpipe")
        assert ex.pipe_schedule.memory_high_water() == [6, 6, 6, 6]

    def test_interleaved_device_peak_bounded(self):
        model = uniform_model(
            name="hw-int",
            num_layers=8,
            flops_per_layer=1e9,
            params_per_layer=50_000,
            activation_bytes=2e6,
        )
        cluster = config_by_name("B", num_devices=2)
        prof = profile_model(model)
        plan = interleaved_straight_plan(
            model, cluster.devices, 4, 4, virtual_per_device=2
        )
        ex = PipelineExecutor(prof, cluster, plan, schedule="interleaved:v=2")
        res = ex.run()
        waters = ex.pipe_schedule.memory_high_water()
        mm = MemoryModel(prof, plan)
        p = len(cluster.devices)
        for dev in range(p):
            stages = [i for i in range(plan.num_stages) if i % p == dev]
            sms = {i: mm.stage_memory(i) for i in stages}
            # Device peak can't exceed every co-located virtual stage at
            # its own high water simultaneously...
            upper = sum(
                sms[i].peak_bytes(waters[i]) - sms[i].persistent_bytes
                for i in stages
            ) + sum(sms[i].persistent_bytes for i in stages)
            # ...and must at least reach all persistent state plus the
            # largest single virtual stage's activation water.
            lower = sum(sms[i].persistent_bytes for i in stages) + max(
                waters[i] * sms[i].per_microbatch_bytes for i in stages
            )
            key = cluster.devices[dev].resource_key
            simulated = res.memory.peak(key)
            assert lower - 1 <= simulated <= upper + 1, (
                f"device {dev}: simulated peak {simulated:.0f}B outside "
                f"[{lower:.0f}, {upper:.0f}]"
            )

    @pytest.mark.parametrize("spec", ["dapple", "zb2bp"])
    def test_ir_high_water_checked_by_battery(self, spec):
        from repro.check import verify_execution

        prof, cluster, plan = _straight()
        report = verify_execution(prof, cluster, plan, schedule=spec)
        assert "ir-high-water" in report.checks
        assert report.ok, report.render()

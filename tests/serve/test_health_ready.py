"""Readiness surface (satellite): ``/healthz`` gains ``ready``, and
``/healthz?ready=1`` turns into a load-balancer probe that 503s while the
server drains or the queue sits at capacity."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.serialization import graph_to_dict
from repro.models import uniform_model
from repro.serve import PlanClient, PlanServer


def _body(**extra):
    graph = uniform_model("ready-test", 6, 2e9, 500_000, 2e6,
                          profile_batch=4)
    body = {"graph": graph_to_dict(graph), "config": "A", "devices": 8,
            "gbs": 32}
    body.update(extra)
    return body


def _get(url):
    """Raw GET returning (status, json_body) without raising on 503."""
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read().decode("utf-8"))


@pytest.fixture()
def server(tmp_path):
    srv = PlanServer(
        workers=1, exec_mode="inline", queue_depth=2,
        data_dir=tmp_path / "serve",
    ).start()
    try:
        yield srv
    finally:
        srv.close()


class TestHealthReady:
    def test_healthy_server_reports_ready(self, server):
        health = PlanClient(server.url).health()
        assert health["ready"] is True
        assert health["status"] == "ok"
        assert "in_flight" in health
        assert "slo" in health

    def test_ready_probe_is_200_when_ready(self, server):
        status, body = _get(f"{server.url}/healthz?ready=1")
        assert status == 200
        assert body["ready"] is True

    def test_plain_healthz_stays_200_when_draining(self, server):
        server._draining = True
        status, body = _get(f"{server.url}/healthz")
        assert status == 200  # liveness unchanged; only the field flips
        assert body["ready"] is False
        assert body["status"] == "draining"

    def test_ready_probe_503s_while_draining(self, server):
        server._draining = True
        status, body = _get(f"{server.url}/healthz?ready=1")
        assert status == 503
        assert body["ready"] is False

    def test_ready_probe_503s_when_queue_full(self, server):
        # Park the single dispatcher on a job that blocks until released,
        # then fill the depth-2 queue behind it.
        release = threading.Event()
        started = threading.Event()
        fork_pool = server.pool.pool
        orig_run = fork_pool.run

        def slow_run(fn, *args):
            started.set()
            release.wait(timeout=30.0)
            return orig_run(fn, *args)

        fork_pool.run = slow_run
        client = PlanClient(server.url)
        try:
            client.submit(_body(gbs=8))  # claimed by the worker, blocks
            assert started.wait(timeout=10.0)
            client.submit(_body(gbs=16))
            client.submit(_body(gbs=24))  # queue now at capacity (2/2)
            status, body = _get(f"{server.url}/healthz?ready=1")
            assert status == 503
            assert body["ready"] is False
            status, body = _get(f"{server.url}/healthz")
            assert status == 200  # liveness unaffected by saturation
            assert body["ready"] is False
        finally:
            release.set()
            fork_pool.run = orig_run
        assert server.drain(timeout=60.0)
        # drain stops the listener; the app-level health keeps ready=False
        assert server.health()["ready"] is False

    def test_ready_flag_recovers_after_queue_empties(self, server):
        client = PlanClient(server.url)
        client.wait(client.submit(_body())["job_id"], timeout=60.0)
        status, body = _get(f"{server.url}/healthz?ready=1")
        assert status == 200
        assert body["ready"] is True

"""Bounded job queue: FIFO order, backpressure, drain semantics."""

import threading

import pytest

from repro.serve.jobs import JobQueue, QueueClosed, QueueFull


class TestJobQueue:
    def test_fifo_order_and_states(self):
        q = JobQueue(max_depth=8)
        a = q.submit({"n": 1})
        b = q.submit({"n": 2})
        assert (a.state, b.state) == ("queued", "queued")
        first = q.claim(timeout=0)
        assert first is a and first.state == "running"
        assert q.depth == 1 and q.in_flight == 1
        q.finish(first, {"result": "d" * 64}, {"latency": 1.0})
        assert first.state == "done" and first.artifacts["result"] == "d" * 64
        second = q.claim(timeout=0)
        assert second is b

    def test_bounded_depth_raises_queue_full(self):
        q = JobQueue(max_depth=2)
        q.submit({})
        q.submit({})
        with pytest.raises(QueueFull, match="depth limit"):
            q.submit({})
        assert q.stats()["rejected"] == 1
        # claiming one frees a slot
        q.claim(timeout=0)
        q.submit({})

    def test_running_jobs_do_not_count_against_depth(self):
        q = JobQueue(max_depth=1)
        q.submit({})
        q.claim(timeout=0)
        q.submit({})  # pending slot freed by the claim

    def test_closed_queue_rejects_submissions(self):
        q = JobQueue(max_depth=4)
        job = q.submit({})
        q.close()
        with pytest.raises(QueueClosed, match="draining"):
            q.submit({})
        # already-accepted work still flows
        assert q.claim(timeout=0) is job

    def test_fail_records_error(self):
        q = JobQueue(max_depth=4)
        job = q.submit({})
        q.claim(timeout=0)
        q.fail(job, "boom")
        assert job.state == "failed"
        assert job.to_dict()["error"] == "boom"
        assert q.stats()["failed"] == 1

    def test_claim_times_out_when_empty(self):
        q = JobQueue(max_depth=4)
        assert q.claim(timeout=0.01) is None

    def test_wait_idle(self):
        q = JobQueue(max_depth=4)
        assert q.wait_idle(timeout=0.01)  # empty queue is idle
        job = q.submit({})
        assert not q.wait_idle(timeout=0.05)  # pending job blocks idleness

        def worker():
            j = q.claim(timeout=1.0)
            q.finish(j, {}, {})

        t = threading.Thread(target=worker)
        t.start()
        assert q.wait_idle(timeout=5.0)
        t.join()
        assert job.state == "done"

    def test_job_ids_are_unique_and_ordered(self):
        q = JobQueue(max_depth=16)
        ids = [q.submit({}).id for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=-1)

"""Wire-schema tests: request decoding, validation, round-trips."""

import pytest

from repro.cluster import config_a, config_by_name
from repro.core import PlannerConfig, profile_model
from repro.core.plancache import fingerprint
from repro.core.serialization import (
    cluster_from_dict,
    cluster_to_dict,
    graph_from_dict,
    graph_to_dict,
    gpu_spec_from_dict,
    gpu_spec_to_dict,
    planner_config_from_dict,
    planner_config_to_dict,
)
from repro.models import get_model, uniform_model
from repro.serve.protocol import PlanRequest, RequestError, decode_plan_request


def _graph():
    return uniform_model("proto-test", 6, 2e9, 500_000, 2e6, profile_batch=4)


class TestPlannerConfigRoundTrip:
    def test_default_round_trips(self):
        cfg = PlannerConfig()
        assert planner_config_from_dict(planner_config_to_dict(cfg)) == cfg

    def test_custom_fields_round_trip(self):
        cfg = PlannerConfig(
            beam_width=7, policies=("fresh_first",), min_stages=2,
            keep_top_k=3, stage_overhead_frac=0.01,
        )
        back = planner_config_from_dict(planner_config_to_dict(cfg))
        assert back == cfg
        assert isinstance(back.policies, tuple)

    def test_partial_dict_uses_defaults(self):
        cfg = planner_config_from_dict({"beam_width": 12})
        assert cfg.beam_width == 12
        assert cfg.policies == PlannerConfig().policies

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="beam_widht"):
            planner_config_from_dict({"beam_widht": 3})


class TestProblemRoundTrips:
    """Round-tripped inputs fingerprint identically — the cache-key level
    statement that serialization loses nothing the planner depends on."""

    def test_graph_round_trip_fingerprint(self):
        graph = _graph()
        clu = config_a(4)
        cfg = PlannerConfig()
        a = fingerprint(profile_model(graph), clu, 64, cfg)
        b = fingerprint(profile_model(graph_from_dict(graph_to_dict(graph))), clu, 64, cfg)
        assert a == b

    def test_zoo_graph_round_trip_fingerprint(self):
        graph = get_model("vgg19")
        clu = config_by_name("C", 16)
        cfg = PlannerConfig()
        a = fingerprint(profile_model(graph), clu, 2048, cfg)
        b = fingerprint(
            profile_model(graph_from_dict(graph_to_dict(graph))), clu, 2048, cfg
        )
        assert a == b

    def test_cluster_round_trip_fingerprint(self):
        graph = _graph()
        clu = config_by_name("A", 8)
        back = cluster_from_dict(cluster_to_dict(clu))
        cfg = PlannerConfig()
        assert fingerprint(profile_model(graph), clu, 64, cfg) == fingerprint(
            profile_model(graph), back, 64, cfg
        )
        assert back.num_devices == clu.num_devices
        assert back.num_machines == clu.num_machines

    def test_gpu_spec_round_trip(self):
        spec = config_a(8).machines[0].gpu_spec
        assert gpu_spec_from_dict(gpu_spec_to_dict(spec)) == spec

    def test_malformed_payloads_raise_value_error(self):
        with pytest.raises(ValueError):
            graph_from_dict({"name": "x"})
        with pytest.raises(ValueError):
            cluster_from_dict({"machines": []})
        with pytest.raises(ValueError):
            gpu_spec_from_dict({"name": "x"})


class TestDecodePlanRequest:
    def test_zoo_model_request(self):
        req = decode_plan_request({"model": "vgg19", "config": "C", "devices": 16})
        assert req.model == "vgg19"
        profile, cluster, gbs, cfg = req.resolve()
        assert profile.graph.name == "VGG-19"
        assert cluster.num_devices == 16
        assert gbs == 2048  # paper default for vgg19
        assert cfg == PlannerConfig()

    def test_inline_graph_request(self):
        req = decode_plan_request({
            "graph": graph_to_dict(_graph()), "config": "A", "devices": 8, "gbs": 32,
        })
        profile, _cluster, gbs, _cfg = req.resolve()
        assert profile.num_layers == 6
        assert gbs == 32

    def test_inline_cluster_request(self):
        req = decode_plan_request({
            "model": "vgg19", "cluster": cluster_to_dict(config_a(1)), "gbs": 64,
        })
        _profile, cluster, _gbs, _cfg = req.resolve()
        assert cluster.num_devices == 8

    def test_round_trip_through_to_dict(self):
        body = {
            "graph": graph_to_dict(_graph()),
            "cluster": cluster_to_dict(config_a(4)),
            "gbs": 64, "planner": {"beam_width": 8}, "explain": True,
        }
        req = decode_plan_request(body)
        again = decode_plan_request(req.to_dict())
        assert again == req

    @pytest.mark.parametrize("body,match", [
        ([1, 2], "JSON object"),
        ({}, "exactly one of"),
        ({"model": "vgg19", "graph": {}}, "exactly one of"),
        ({"model": "no-such-model"}, "unknown model"),
        ({"model": "vgg19", "frobnicate": 1}, "unknown request key"),
        ({"model": "vgg19", "devices": "sixteen"}, "positive integer"),
        ({"model": "vgg19", "devices": 0}, "positive integer"),
        ({"model": "vgg19", "gbs": True}, "positive integer"),
        ({"model": "vgg19", "explain": "yes"}, "boolean"),
        ({"model": "vgg19", "planner": {"beam_widht": 3}}, "beam_widht"),
        ({"model": "vgg19", "config": "Z"}, "unknown hardware config"),
        ({"model": "vgg19", "config": "A", "cluster": {}, "devices": 8}, "not both"),
        ({"model": "vgg19", "schema": "plan-request-v0"}, "unsupported request schema"),
    ])
    def test_invalid_requests_rejected(self, body, match):
        with pytest.raises(RequestError, match=match):
            decode_plan_request(body)

    def test_devices_must_fit_config(self):
        # Config A packs 8 GPUs/server; 12 devices is rejected at decode time.
        with pytest.raises(RequestError, match="multiple of 8"):
            decode_plan_request({"model": "vgg19", "config": "A", "devices": 12})

"""Tier-1 end-to-end smoke: ephemeral-port server, submit → poll → fetch →
drain, plus the HTTP error surface (400/404/429/503) and the bit-identity
guarantee vs a direct ``plan_best`` call."""

import json
import time
import urllib.request

import pytest

from repro.cluster import config_by_name
from repro.core import PlannerConfig, profile_model
from repro.core.planner import plan_best
from repro.core.serialization import graph_to_dict, plan_to_dict
from repro.models import uniform_model
from repro.serve import PlanClient, PlanServer, ServiceError

#: Generous tier-1 cap for a warm cache-hit round trip; the benchmark
#: (benchmarks/perf_serve.py) gates the real < 50 ms p95 target.
WARM_HIT_CAP_S = 2.0


def _graph_body(**extra):
    graph = uniform_model("serve-test", 6, 2e9, 500_000, 2e6, profile_batch=4)
    body = {"graph": graph_to_dict(graph), "config": "A", "devices": 8, "gbs": 32}
    body.update(extra)
    return graph, body


@pytest.fixture()
def server(tmp_path):
    srv = PlanServer(
        workers=1, exec_mode="inline", queue_depth=8, data_dir=tmp_path / "serve"
    ).start()
    try:
        yield srv
    finally:
        srv.close()


class TestEndToEnd:
    def test_submit_poll_fetch_drain(self, server):
        graph, body = _graph_body()
        client = PlanClient(server.url, timeout=10.0)

        health = client.health()
        assert health["status"] == "ok"
        assert health["queue"]["depth"] == 0

        submitted = client.submit(body)
        assert submitted["job_id"].startswith("job-")
        job = client.wait(submitted["job_id"], timeout=60.0)
        assert job["state"] == "done"
        assert set(job["artifacts"]) == {"result"}

        # Served result is bit-identical to a direct plan_best call.
        result = client.result(job)
        direct = plan_best(
            profile_model(graph), config_by_name("A", 8), 32, PlannerConfig()
        )
        assert result["plan"] == plan_to_dict(direct.plan)
        assert result["estimate"]["latency"] == direct.estimate.latency
        assert result["counters"]["plans_evaluated"] == direct.plans_evaluated

        # The artifact is immutable content: digest = sha256(payload).
        import hashlib

        payload, _ct = client.artifact(job["artifacts"]["result"])
        assert hashlib.sha256(payload).hexdigest() == job["artifacts"]["result"]

        assert server.drain(timeout=10.0)
        assert server.queue.stats()["completed"] == 1

    def test_warm_cache_hit_round_trip(self, server):
        _graph, body = _graph_body()
        client = PlanClient(server.url, timeout=10.0)
        cold = client.wait(client.submit(body)["job_id"], timeout=60.0)
        assert cold["summary"]["cache_hit"] is False

        t0 = time.perf_counter()
        warm = client.wait(client.submit(body)["job_id"], timeout=60.0)
        elapsed = time.perf_counter() - t0
        assert warm["summary"]["cache_hit"] is True
        assert elapsed < WARM_HIT_CAP_S, (
            f"warm cache-hit round trip took {elapsed:.2f}s — "
            "did the service stop short-circuiting through the plan cache?"
        )
        # identical content → identical artifact digests modulo request echo
        assert client.result(warm)["plan"] == client.result(cold)["plan"]

        stats = client.cache_stats()
        assert stats["served"] == {"jobs_done": 2, "cache_hits": 1}
        assert stats["plan_cache"]["disk_entries"] == 1
        assert stats["artifacts"]["artifacts"] >= 1

    def test_explain_and_check_artifacts(self, server):
        _graph, body = _graph_body(explain=True, check=True,
                                   planner={"keep_top_k": 3})
        client = PlanClient(server.url, timeout=30.0)
        job = client.wait(client.submit(body)["job_id"], timeout=120.0)
        assert set(job["artifacts"]) == {"result", "explain", "check"}
        explain, content_type = client.artifact(job["artifacts"]["explain"])
        assert b"winner:" in explain
        assert content_type.startswith("text/plain")
        check = client.artifact_json(job["artifacts"]["check"])
        assert check["ok"] is True
        assert check["invariants"]
        assert job["summary"]["check_ok"] is True


class TestHTTPErrorSurface:
    def test_bad_requests_are_400(self, server):
        client = PlanClient(server.url, timeout=10.0)
        for body, fragment in [
            ({"model": "no-such-model"}, "unknown model"),
            ({"model": "vgg19", "planner": {"beam_widht": 1}}, "beam_widht"),
            ({}, "exactly one of"),
        ]:
            with pytest.raises(ServiceError) as err:
                client.submit(body)
            assert err.value.status == 400
            assert fragment in str(err.value)

    def test_non_json_body_is_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/v1/plans", data=b"not json{", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 400

    def test_unknown_job_artifact_endpoint_are_404(self, server):
        client = PlanClient(server.url, timeout=10.0)
        for path in ("/v1/jobs/job-999999", "/v1/artifacts/" + "0" * 64,
                     "/v1/nope"):
            with pytest.raises(ServiceError) as err:
                client._json("GET", path)
            assert err.value.status == 404

    def test_backpressure_is_429_with_retry_after(self, tmp_path):
        # Workers deliberately not started: submissions pile up in the queue.
        srv = PlanServer(
            workers=1, exec_mode="inline", queue_depth=2,
            data_dir=tmp_path / "bp", start_workers=False,
        ).start()
        try:
            client = PlanClient(srv.url, timeout=10.0)
            _graph, body = _graph_body()
            client.submit(body)
            client.submit(body)
            with pytest.raises(ServiceError) as err:
                client.submit(body)
            assert err.value.status == 429
            assert err.value.retry_after == 1.0
            assert client.health()["queue"]["rejected"] == 1
            # load-shedding recovers once workers drain the queue
            srv.start_workers()
            deadline = time.monotonic() + 60
            while client.health()["queue"]["depth"] and time.monotonic() < deadline:
                time.sleep(0.02)
            client.submit(body)
        finally:
            srv.close()

    def test_draining_server_returns_503(self, server):
        client = PlanClient(server.url, timeout=10.0)
        server.queue.close()
        _graph, body = _graph_body()
        with pytest.raises(ServiceError) as err:
            client.submit(body)
        assert err.value.status == 503


class TestForkMode:
    def test_fork_pool_serves_and_reports_mode(self, tmp_path):
        srv = PlanServer(
            workers=2, exec_mode="fork", queue_depth=8, data_dir=tmp_path / "fork"
        ).start()
        try:
            client = PlanClient(srv.url, timeout=30.0)
            assert client.health()["exec_mode"] in ("fork", "inline")  # sandbox may degrade
            _graph, body = _graph_body()
            job = client.wait(client.submit(body)["job_id"], timeout=120.0)
            assert job["state"] == "done"
            # disk tier is shared across worker processes: a repeat hits
            warm = client.wait(client.submit(body)["job_id"], timeout=120.0)
            assert warm["summary"]["cache_hit"] is True
            assert srv.drain(timeout=30.0)
        finally:
            srv.close()


class TestJobFailureSurface:
    def test_runtime_failure_marks_job_failed(self, server):
        # An inline graph that decodes but cannot be planned: memory-infeasible
        # everywhere (enormous per-layer footprint on every device).
        graph = uniform_model("oom-test", 4, 2e9, 500_000, 1e18, profile_batch=4)
        body = {"graph": graph_to_dict(graph), "config": "A", "devices": 8, "gbs": 32}
        client = PlanClient(server.url, timeout=30.0)
        submitted = client.submit(body)
        with pytest.raises(ServiceError, match="failed"):
            client.wait(submitted["job_id"], timeout=60.0)
        job = client.job(submitted["job_id"])
        assert job["state"] == "failed"
        assert job["error"]

"""Content-addressed artifact store tests."""

import hashlib
import json

import pytest

from repro.serve.store import ArtifactStore


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_json({"b": 2, "a": 1})
        payload, content_type = store.get(digest)
        assert json.loads(payload) == {"a": 1, "b": 2}
        assert content_type == "application/json"
        assert digest in store

    def test_digest_is_content_address(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put(b"hello", kind="text")
        assert digest == hashlib.sha256(b"hello").hexdigest()
        payload, content_type = store.get(digest)
        assert payload == b"hello"
        assert content_type.startswith("text/plain")

    def test_identical_content_deduplicates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        # key order must not matter: canonical (sorted) JSON encoding
        d1 = store.put_json({"a": 1, "b": 2})
        d2 = store.put_json({"b": 2, "a": 1})
        assert d1 == d2
        assert store.stats() == {"artifacts": 1, "bytes": len(json.dumps({"a": 1, "b": 2}, sort_keys=True))}

    def test_missing_and_invalid_digests(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("0" * 64) is None
        # path traversal and junk must not touch the filesystem
        assert store.get("../../etc/passwd") is None
        assert store.get("ABC") is None
        assert store.get("g" * 64) is None

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown artifact kind"):
            ArtifactStore(tmp_path).put(b"x", kind="exe")

    def test_stats_counts_all_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(b"one", kind="text")
        store.put(b"two", kind="text")
        store.put_json({"three": 3})
        stats = store.stats()
        assert stats["artifacts"] == 3
        assert stats["bytes"] > 0

"""Acceptance e2e for the observability tentpole: one request through a
live ephemeral-port server with a ForkPool worker renders as one connected
trace; ``/metrics`` speaks Prometheus text; ``repro obs summarize`` over
the JSONL export reproduces the server's SLO percentiles bit-exact."""

import json
import time

import pytest

import repro.obs as obs
from repro import cli
from repro.core.serialization import graph_to_dict
from repro.models import uniform_model
from repro.obs.export import parse_prometheus
from repro.obs.schema import validate_jsonl
from repro.obs.sinks import write_jsonl
from repro.serve import PlanClient, PlanServer

#: Every hop the request path must emit (client process, server thread,
#: queue, fork worker, planner, simulator).
REQUIRED_SPANS = {
    "client.submit", "client.wait", "client.fetch",
    "serve.request", "serve.queue_wait", "serve.job", "serve.execute",
    "planner.search", "sim.run",
}

POST_ROUTE = "POST /v1/plans"


def _body(**extra):
    graph = uniform_model("trace-e2e", 6, 2e9, 500_000, 2e6, profile_batch=4)
    body = {"graph": graph_to_dict(graph), "config": "A", "devices": 8,
            "gbs": 32}
    body.update(extra)
    return body


def _wait_for_spans(name: str, count: int, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if sum(1 for r in obs.tracer().spans() if r.name == name) >= count:
            return
        time.sleep(0.01)
    raise AssertionError(f"never saw {count} finished {name!r} span(s)")


@pytest.fixture()
def server(tmp_path):
    srv = PlanServer(
        workers=1, exec_mode="fork", queue_depth=8,
        data_dir=tmp_path / "serve",
    ).start()
    try:
        yield srv
    finally:
        srv.close()


class TestTracingEndToEnd:
    def test_one_request_is_one_rooted_trace(
        self, server, tmp_path, capsys
    ):
        client = PlanClient(server.url, timeout=30.0)
        # the metrics registry is process-global and other serve tests may
        # have bumped the counters already: assert deltas, not absolutes
        post_key = ("repro_serve_requests_total",
                    (("route", POST_ROUTE), ("status", "202")))
        posts_before = parse_prometheus(client.metrics()).get(post_key, 0.0)

        # --- drive the service under one client-side trace --------------- #
        with obs.start_trace("client.session") as root:
            # check=True routes through verify_execution so the worker's
            # trace includes the simulator (sim.run), not just the planner.
            first = client.submit(_body(check=True))
            job = client.wait(first["job_id"], timeout=120.0)
            client.artifact(job["artifacts"]["result"])
            for gbs in (16, 64):  # two more POSTs for real percentiles
                client.wait(client.submit(_body(gbs=gbs))["job_id"],
                            timeout=120.0)
        trace_id = root.trace_id
        assert trace_id is not None

        # client.wait returns on job state, which can precede the worker
        # thread closing its serve.job span — wait for all three.
        _wait_for_spans("serve.job", 3)

        health = client.health()  # SLO snapshot; itself a separate trace
        metrics_text = client.metrics()

        # --- reassemble the trace from the JSONL sink -------------------- #
        path = write_jsonl(tmp_path / "trace.jsonl")
        assert validate_jsonl(path) > 0
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        spans = [r for r in records
                 if r.get("type") == "span" and r.get("trace_id") == trace_id]
        names = {r["name"] for r in spans}
        assert REQUIRED_SPANS <= names, f"missing {REQUIRED_SPANS - names}"

        by_uid = {r["uid"]: r for r in spans}
        assert len(by_uid) == len(spans), "span uids must be unique"
        roots = [r for r in spans if r["parent_uid"] is None]
        assert [r["name"] for r in roots] == ["client.session"]
        assert roots[0]["uid"] == root.uid
        # every non-root parent resolves inside the trace...
        children = {}
        for r in spans:
            if r["parent_uid"] is not None:
                assert r["parent_uid"] in by_uid, (
                    f"{r['name']} dangles from {r['parent_uid']}")
                children.setdefault(r["parent_uid"], []).append(r["uid"])
        # ...and the whole trace is reachable from the single root.
        seen, frontier = set(), [root.uid]
        while frontier:
            uid = frontier.pop()
            seen.add(uid)
            frontier.extend(children.get(uid, ()))
        assert seen == set(by_uid), "trace is not a single connected tree"

        # cross-process part: worker spans carry the fork child's pid
        server_pid = {r["pid"] for r in spans if r["name"] == "serve.request"}
        if server.pool.mode == "fork":
            planner_pids = {r["pid"] for r in spans
                            if r["name"] == "planner.search"}
            assert planner_pids and not (planner_pids & server_pid)

        # --- /metrics: valid Prometheus text with the new histograms ----- #
        parsed = parse_prometheus(metrics_text)
        series = {name for name, _labels in parsed}
        assert "repro_serve_queue_wait_ms_bucket" in series
        assert "repro_serve_exec_ms_bucket" in series
        assert "repro_serve_request_ms_bucket" in series
        assert parsed[post_key] - posts_before == 3

        # --- satellite: wall time split surfaces in the response --------- #
        result_job = client.job(first["job_id"])
        timing = result_job["summary"]["timing"]
        assert {"queue_wait_ms", "exec_ms", "serialize_ms",
                "total_ms"} <= set(timing)

        # --- `repro obs summarize` is bit-exact vs the server SLO -------- #
        slo = health["slo"][POST_ROUTE]
        assert slo["count"] == 3
        rc = cli.main([
            "obs", "summarize", str(path),
            "--trace", trace_id,  # spans from other tests share the tracer
            "--name", "serve.request",
            "--attr", f"route={POST_ROUTE}",
            "--json",
        ])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        (row,) = [r for r in rows if r["name"] == "serve.request"]
        assert row["count"] == 3
        assert row["p50_ms"] == slo["p50_ms"]   # bit-exact, not approx
        assert row["p95_ms"] == slo["p95_ms"]
        assert row["p99_ms"] == slo["p99_ms"]

"""Bit-identity suite for the batched multi-scenario engine.

The batched engine (:mod:`repro.sim.batched`) simulates S duration rows
over one compiled graph — sharing structure, dedup'ing identical rows, and
replaying from baseline snapshots when a scenario only perturbs late ops.
Every path must be **bit-identical** to the per-seed compiled engine run on
a graph rebuilt with that row's durations, which is itself bit-identical to
the reference oracle.  These tests enforce that over seeded random DAGs
(hypothesis-driven), executor-built model-zoo graphs, the fault-model
duration matrices of :func:`repro.faults.models.perturb_durations`, and the
ensemble analysis built on top.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.faults import (
    ComputeJitter,
    DegradedLink,
    SlowDevice,
    TransientFailure,
    perturb_durations,
    perturb_graph,
    run_ensemble,
)
from repro.models import uniform_model
from repro.runtime.executor import PipelineExecutor
from repro.sim import Op, Simulator, TaskGraph, run_batched, run_batched_graph
from repro.sim.compiled import compile_graph
from repro.sim.engine import ENGINES, MemEffect
from tests.sim.test_compiled_equivalence import assert_identical, random_graph


def rebuild_with_durations(seed, n, num_resources, row):
    """The same random DAG, rebuilt so op ``i`` has duration ``row[i]``.

    Durations must be set before :meth:`TaskGraph.add` (the indexed columns
    snapshot op metadata at add time), so this re-adds fresh Ops rather
    than mutating the originals.
    """
    g = random_graph(seed, n, num_resources)
    g2 = TaskGraph()
    for i, op in enumerate(g.ops()):
        op2 = Op(
            op.name,
            float(row[i]),
            resources=op.resources,
            priority=op.priority,
        )
        op2.mem_effects.extend(op.mem_effects)
        g2.add(op2)
    for name, succs in g._succ.items():
        for after in succs:
            g2.add_dep(name, after)
    return g2


def perturbation_matrix(seed, base, num_rows):
    """Rows of multiplicative perturbations over ``base``, plus edge rows:
    an exact copy of the baseline (dedup) and an all-zeros row."""
    rng = np.random.default_rng(seed)
    rows = [np.asarray(base, dtype=np.float64)]
    for _ in range(num_rows):
        row = rows[0].copy()
        if row.size:
            hit = rng.random(row.size) < 0.3
            row[hit] = row[hit] * rng.uniform(0.5, 3.0, int(hit.sum()))
        rows.append(row)
    rows.append(rows[0].copy())  # bytewise duplicate of the baseline
    rows.append(np.zeros_like(rows[0]))
    return np.vstack(rows) if rows[0].size else np.empty((len(rows), 0))


class TestSingleScenario:
    """engine="batched" with one row == compiled == reference."""

    def test_registered_engine(self):
        assert "batched" in ENGINES

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=1, max_value=100),
        num_resources=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_random_dags(self, seed, n, num_resources):
        compiled = Simulator(
            random_graph(seed, n, num_resources), engine="compiled"
        ).run()
        batched = Simulator(
            random_graph(seed, n, num_resources), engine="batched"
        ).run()
        assert_identical(compiled, batched)

    @pytest.mark.parametrize("seed", range(3))
    def test_large_random_dags(self, seed):
        compiled = Simulator(random_graph(seed, 600, 4), engine="compiled").run()
        batched = Simulator(random_graph(seed, 600, 4), engine="batched").run()
        assert_identical(compiled, batched)

    def test_env_var_selects_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
        sim = Simulator(random_graph(0, 20, 2))
        assert sim.engine == "batched"
        assert sim.run().makespan == Simulator(
            random_graph(0, 20, 2), engine="compiled"
        ).run().makespan

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            Simulator(TaskGraph(), engine="vectorized")


class TestMultiScenario:
    """Every row of a batch == a compiled run on a rebuilt graph."""

    @pytest.mark.parametrize("seed", range(4))
    def test_rows_match_per_row_compiled(self, seed):
        n, num_resources = 90, 4
        g = random_graph(seed, n, num_resources)
        base = [op.duration for op in g.ops()]
        matrix = perturbation_matrix(seed, base, num_rows=4)
        batch = run_batched(compile_graph(g), matrix)
        assert len(batch.scenario_kinds) == matrix.shape[0]
        for s in range(matrix.shape[0]):
            ref = Simulator(
                rebuild_with_durations(seed, n, num_resources, matrix[s]),
                engine="compiled",
            ).run()
            assert_identical(ref, batch.result(s))
            assert batch.makespan(s) == ref.makespan
            assert isinstance(batch.makespan(s), float)

    def test_duplicate_rows_are_reused(self):
        g = random_graph(7, 60, 3)
        base = np.array([op.duration for op in g.ops()])
        matrix = np.vstack([base, base * 1.5, base, base * 1.5])
        batch = run_batched(compile_graph(g), matrix)
        assert batch.scenario_kinds == ("full", "full", "reused", "reused")
        assert batch.makespan(0) == batch.makespan(2)
        assert batch.makespan(1) == batch.makespan(3)
        # Reused scenarios share the underlying columns, not copies.
        assert batch.result(0).trace._cols()[1] is batch.result(2).trace._cols()[1]

    def test_run_batched_graph_defaults_to_own_durations(self):
        g = random_graph(3, 50, 3)
        batch = run_batched_graph(random_graph(3, 50, 3))
        assert batch.durations.shape == (1, len(g.ops()))
        assert batch.makespan(0) == Simulator(g, engine="compiled").run().makespan


class TestIncrementalPath:
    """Snapshot replay triggers on late-only perturbations and is
    bit-identical to the full re-run of the same rows."""

    def _zoo_graph(self):
        model = uniform_model("inc", 8, 9e9, 1_000_000, 1e6, profile_batch=2)
        prof = profile_model(model)
        cluster = config_b(2)
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph, [Stage(0, 4, (d[0],)), Stage(4, 8, (d[1],))], 512, 256
        )
        return PipelineExecutor(prof, cluster, plan).build_graph()

    def test_late_perturbation_replays_incrementally(self):
        g = self._zoo_graph()
        cg = compile_graph(g)
        assert cg.num_ops >= 512  # below this the incremental path is off
        base = np.asarray(cg.durations, dtype=np.float64)
        probe = run_batched(cg, base[None, :], snapshots=0)
        starts = probe.view(0).start_by_op
        late = int(np.argmax(starts))
        row = base.copy()
        row[late] *= 2.0
        matrix = np.vstack([base, row])
        fast = run_batched(cg, matrix)
        assert fast.scenario_kinds == ("full", "incremental")
        full = run_batched(cg, matrix, snapshots=0)
        assert full.scenario_kinds == ("full", "full")
        for s in range(2):
            assert_identical(full.result(s), fast.result(s))

    def test_early_perturbation_falls_back_to_full(self):
        g = self._zoo_graph()
        cg = compile_graph(g)
        base = np.asarray(cg.durations, dtype=np.float64)
        probe = run_batched(cg, base[None, :], snapshots=0)
        early = int(np.argmin(probe.view(0).start_by_op))
        row = base.copy()
        row[early] = row[early] * 2.0 + 1.0
        batch = run_batched(cg, np.vstack([base, row]))
        assert batch.scenario_kinds == ("full", "full")
        ref = Simulator(
            perturb_graph(g, (), 0), engine="compiled"
        ).run()  # structure sanity: clean graph returned as-is
        assert batch.makespan(0) == ref.makespan


class TestScenarioView:
    def _batch(self):
        g = random_graph(11, 80, 4)
        base = [op.duration for op in g.ops()]
        matrix = perturbation_matrix(11, base, num_rows=2)
        return compile_graph(g), run_batched(compile_graph(g), matrix)

    def test_busy_time_matches_trace(self):
        cg, batch = self._batch()
        for s in (0, 1, batch.durations.shape[0] - 1):
            view = batch.view(s)
            trace = batch.result(s).trace
            for key in cg.resource_keys:
                assert view.busy_time(key) == trace.busy_time(key)

    def test_unknown_resource_is_zero(self):
        _, batch = self._batch()
        assert batch.view(0).busy_time("res:none-such") == 0.0

    def test_resource_sequence_matches_by_resource(self):
        cg, batch = self._batch()
        view = batch.view(1)
        trace = batch.result(1).trace
        for slot, key in enumerate(cg.resource_keys):
            names = [cg.ops[int(i)].name for i in view.resource_sequence(slot)]
            assert names == [e.name for e in trace.by_resource(key)]
            index = view.resource_index(slot)
            assert [cg.ops[i].name for i in sorted(index, key=index.get)] == names


class TestValidation:
    def test_negative_duration_rejected(self):
        g = random_graph(0, 10, 2)
        cg = compile_graph(g)
        row = np.asarray(cg.durations, dtype=np.float64).copy()
        row[3] = -0.5
        with pytest.raises(ValueError, match="is negative"):
            run_batched(cg, row[None, :])

    def test_one_dimensional_matrix_rejected(self):
        cg = compile_graph(random_graph(0, 10, 2))
        with pytest.raises(ValueError, match="matrix"):
            run_batched(cg, np.asarray(cg.durations))

    def test_column_count_must_match_ops(self):
        cg = compile_graph(random_graph(0, 10, 2))
        with pytest.raises(ValueError, match="columns"):
            run_batched(cg, np.zeros((2, 4)))

    def test_empty_batch_rejected(self):
        cg = compile_graph(random_graph(0, 10, 2))
        with pytest.raises(ValueError, match="at least one"):
            run_batched(cg, np.empty((0, cg.num_ops)))


class TestFaultMatrixEquivalence:
    """perturb_durations rows == per-seed perturb_graph duration columns,
    and the ensemble built on them is identical across engines."""

    def _problem(self):
        model = uniform_model("fm", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
        prof = profile_model(model)
        cluster = config_b(2)
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        return prof, cluster, plan

    MODEL_SETS = [
        (ComputeJitter(sigma=0.1),),
        (SlowDevice(factor=2.0, num_devices=1),),
        (DegradedLink(factor=3.0, num_links=1),),
        (TransientFailure(stall=0.4),),
        (
            ComputeJitter(sigma=0.05),
            SlowDevice(factor=1.5, num_devices=1),
            TransientFailure(stall=0.2),
        ),
        (),
    ]

    @pytest.mark.parametrize("models", MODEL_SETS, ids=lambda ms: "+".join(
        type(m).__name__ for m in ms) or "empty")
    def test_matrix_rows_match_perturb_graph(self, models):
        prof, cluster, plan = self._problem()
        graph = PipelineExecutor(prof, cluster, plan).build_graph()
        seeds = [0, 1, 7, 12345]
        matrix = perturb_durations(graph, models, seeds)
        assert matrix.shape == (len(seeds), len(graph.ops()))
        for s, seed in enumerate(seeds):
            pg = perturb_graph(graph, models, seed)
            column = np.array([op.duration for op in pg.ops()])
            assert np.array_equal(matrix[s], column)

    def test_ensemble_batched_identical_to_per_seed(self):
        prof, cluster, plan = self._problem()
        models = (ComputeJitter(sigma=0.1), SlowDevice(factor=2.0))
        # Duplicate seeds exercise the dedup path inside the batch.
        seeds = [0, 1, 2, 1, 0]
        batched = run_ensemble(
            prof, cluster, plan, models, seeds, sim_engine="batched"
        )
        per_seed = run_ensemble(
            prof, cluster, plan, models, seeds, sim_engine="compiled"
        )
        assert batched.identical(per_seed)

"""Tests for Chrome trace-event export."""

import json

from repro.cluster import config_b
from repro.core import profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.models import uniform_model
from repro.runtime import execute_plan
from repro.sim import Op, Simulator, TaskGraph
from repro.sim.chrome_trace import export_chrome_trace, trace_to_events


def _run_small():
    g = TaskGraph()
    g.add(Op("F/s0/m0", 1.0, resources=("gpu:0",), tags={"kind": "F", "stage": 0, "mb": 0}))
    g.add(Op("send/s0/m0", 0.5, resources=("nic-out:0",), tags={"kind": "send", "mb": 0}))
    g.add(Op("B/s0/m0", 2.0, resources=("gpu:0",), tags={"kind": "B", "stage": 0, "mb": 0}))
    g.add_dep("F/s0/m0", "send/s0/m0")
    g.add_dep("send/s0/m0", "B/s0/m0")
    return Simulator(g).run()


class TestTraceToEvents:
    def test_complete_events_emitted(self):
        events = trace_to_events(_run_small().trace)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        names = {e["name"] for e in xs}
        assert names == {"F/s0/m0", "send/s0/m0", "B/s0/m0"}

    def test_thread_metadata_per_resource(self):
        events = trace_to_events(_run_small().trace)
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"gpu:0", "nic-out:0"}

    def test_gpus_sorted_before_links(self):
        events = trace_to_events(_run_small().trace)
        metas = sorted((e["tid"], e["args"]["name"]) for e in events if e["ph"] == "M")
        assert metas[0][1] == "gpu:0"

    def test_timestamps_scaled_to_us(self):
        events = trace_to_events(_run_small().trace)
        b = next(e for e in events if e.get("name") == "B/s0/m0")
        assert b["ts"] == 1.5e6
        assert b["dur"] == 2.0e6

    def test_tags_in_args(self):
        events = trace_to_events(_run_small().trace)
        f = next(e for e in events if e.get("name") == "F/s0/m0")
        assert f["args"] == {"kind": "F", "stage": 0, "mb": 0}


class TestRowKey:
    """Non-numeric GPU ids must sort (lexicographically, after the numeric
    block) instead of crashing the export."""

    def test_non_numeric_gpu_id_does_not_crash(self):
        g = TaskGraph()
        g.add(Op("F/a", 1.0, resources=("gpu:a0",), tags={"kind": "F"}))
        g.add(Op("F/b", 1.0, resources=("gpu:1",), tags={"kind": "F"}))
        events = trace_to_events(Simulator(g).run().trace)
        metas = sorted((e["tid"], e["args"]["name"]) for e in events if e["ph"] == "M")
        assert [name for _tid, name in metas] == ["gpu:1", "gpu:a0"]

    def test_numeric_ids_still_sort_numerically(self):
        from repro.sim.chrome_trace import _row_key

        keys = ["gpu:10", "gpu:2", "gpu:a0", "nic:0", "gpu:1"]
        ordered = sorted(keys, key=_row_key)
        assert ordered == ["gpu:1", "gpu:2", "gpu:10", "gpu:a0", "nic:0"]


class TestExport:
    def test_file_is_valid_json(self, tmp_path):
        path = export_chrome_trace(_run_small().trace, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) >= 3


class TestEngineRoundTrip:
    """Chrome-trace and Gantt output must not depend on the engine: the
    columnar trace streams its rows without materializing events, and the
    result must be byte-identical to the reference trace's export for the
    same fixed schedule."""

    def _results(self):
        model = uniform_model("rt", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
        cluster = config_b(2)
        prof = profile_model(model)
        d = cluster.devices
        plan = ParallelPlan(
            model, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        ref = execute_plan(prof, cluster, plan, sim_engine="reference")
        fast = execute_plan(prof, cluster, plan, sim_engine="compiled")
        return ref, fast

    def test_chrome_events_identical(self, tmp_path):
        ref, fast = self._results()
        assert trace_to_events(ref.trace) == trace_to_events(fast.trace)
        p_ref = export_chrome_trace(ref.trace, tmp_path / "ref.json")
        p_fast = export_chrome_trace(fast.trace, tmp_path / "fast.json")
        assert p_ref.read_text() == p_fast.read_text()

    def test_gantt_identical(self):
        from repro.viz import render_gantt

        ref, fast = self._results()
        keys = [f"gpu:{i}" for i in range(2)]
        assert render_gantt(ref.trace, width=80, resources=keys) == render_gantt(
            fast.trace, width=80, resources=keys
        )

"""Equivalence suite: compiled engine vs the reference oracle.

The compiled engine (indexed task graph + waiter-queue dispatch, columnar
trace/memory) must be **bit-identical** to the reference drain-everything
loop: same makespans, same event order under the (priority, submission-seq)
tie-break, same per-device memory timelines.  These tests enforce that over
seeded random DAGs (with shared resources, zero-duration barriers,
simultaneous completions, priority ties, and start/end memory effects), the
model zoo via the executor, multi-iteration steady-state graphs, and the
direct-graph experiments.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import config_a, config_b
from repro.core import Planner, profile_model
from repro.core.plan import ParallelPlan, Stage
from repro.experiments import fig8
from repro.faults import (
    ComputeJitter,
    SlowDevice,
    TransientFailure,
    execute_plan_faulted,
    perturb_graph,
)
from repro.models import get_model, uniform_model
from repro.runtime import execute_plan, simulate_iterations
from repro.sim import Op, Simulator, TaskGraph
from repro.sim.engine import MemEffect


def random_graph(seed: int, n: int, num_resources: int, num_devices: int = 3):
    """A seeded random DAG exercising every engine code path at once.

    Zero-duration barriers, duplicate durations (simultaneous completions),
    priority ties, multi-resource ops, resource-free ops, and memory deltas
    at both op start and op end.
    """
    rng = random.Random(seed)
    keys = [f"res:{i}" for i in range(num_resources)]
    devices = [f"dev:{i}" for i in range(num_devices)]
    g = TaskGraph()
    for i in range(n):
        duration = rng.choice([0.0, 0.0, 0.25, 0.5, 1.0, 1.0, 2.0])
        nres = rng.choice([0, 1, 1, 2, 3])
        op = Op(
            f"op{i}",
            duration,
            resources=tuple(rng.sample(keys, min(nres, len(keys)))),
            priority=float(rng.choice([0, 0, 1, 2])),
        )
        for _ in range(rng.choice([0, 0, 1, 2])):
            op.mem_effects.append(
                MemEffect(
                    rng.choice(devices),
                    rng.choice([64.0, -32.0, 128.0]),
                    at_end=rng.random() < 0.5,
                )
            )
        g.add(op)
    for i in range(n):
        for j in rng.sample(range(n), min(3, n)):
            if j > i and rng.random() < 0.6:
                g.add_dep(f"op{i}", f"op{j}")
    return g


def event_rows(result):
    return [
        (e.name, e.start, e.end, e.resources, e.tags) for e in result.trace.events
    ]


def assert_identical(res_ref, res_fast):
    """Exact equality — no tolerances — of traces, makespans, and memory."""
    assert res_ref.makespan == res_fast.makespan
    assert event_rows(res_ref) == event_rows(res_fast)
    assert res_ref.memory.devices() == res_fast.memory.devices()
    assert res_ref.memory.peak_all() == res_fast.memory.peak_all()
    for dev in res_ref.memory.devices():
        t_ref, u_ref = res_ref.memory._materialize(dev)
        t_fast, u_fast = res_fast.memory._materialize(dev)
        assert np.array_equal(t_ref, t_fast)
        assert np.array_equal(u_ref, u_fast)


def run_both(build):
    """Build two identical graphs (fresh Ops each) and run both engines."""
    ref = Simulator(build(), engine="reference").run()
    fast = Simulator(build(), engine="compiled").run()
    return ref, fast


class TestRandomDagEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=1, max_value=120),
        num_resources=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_random_dags(self, seed, n, num_resources):
        ref, fast = run_both(lambda: random_graph(seed, n, num_resources))
        assert_identical(ref, fast)

    @pytest.mark.parametrize("seed", range(5))
    def test_large_random_dags(self, seed):
        ref, fast = run_both(lambda: random_graph(seed, 600, 4))
        assert_identical(ref, fast)

    def test_empty_graph(self):
        ref, fast = run_both(TaskGraph)
        assert ref.makespan == fast.makespan == 0.0
        assert fast.trace.events == []

    def test_zero_duration_barrier_chain(self):
        # Barriers complete at the instant they start, forcing several
        # dispatch rounds at the same timestamp.
        def build():
            g = TaskGraph()
            g.add(Op("a", 1.0, resources=("r0",)))
            g.add(Op("bar0", 0.0))
            g.add(Op("bar1", 0.0, resources=("r0",)))
            g.add(Op("b", 1.0, resources=("r0",), priority=1.0))
            g.add(Op("c", 1.0, resources=("r1",)))
            g.add_dep("a", "bar0")
            g.add_dep("bar0", "bar1")
            g.add_dep("bar1", "b")
            g.add_dep("bar1", "c")
            return g

        ref, fast = run_both(build)
        assert_identical(ref, fast)

    def test_simultaneous_completions_free_shared_resource(self):
        # x and y complete at the same instant; both free resources that
        # parked ops need — the drain must make both frees visible before
        # the (priority, seq)-ordered dispatch.
        def build():
            g = TaskGraph()
            g.add(Op("x", 2.0, resources=("r0",)))
            g.add(Op("y", 2.0, resources=("r1",)))
            g.add(Op("needs_both", 1.0, resources=("r0", "r1"), priority=1.0))
            g.add(Op("needs_r0", 1.0, resources=("r0",), priority=0.0))
            return g

        ref, fast = run_both(build)
        assert_identical(ref, fast)

    def test_priority_tie_falls_back_to_submission_order(self):
        def build():
            g = TaskGraph()
            for i in range(6):
                g.add(Op(f"op{i}", 1.0, resources=("gpu:0",), priority=5.0))
            return g

        ref, fast = run_both(build)
        assert [e.name for e in fast.trace.by_resource("gpu:0")] == [
            f"op{i}" for i in range(6)
        ]
        assert_identical(ref, fast)


class TestModelZooEquivalence:
    def _exec_both(self, prof, cluster, plan, **kw):
        ref = execute_plan(prof, cluster, plan, sim_engine="reference", **kw)
        fast = execute_plan(prof, cluster, plan, sim_engine="compiled", **kw)
        assert ref.iteration_time == fast.iteration_time
        assert event_rows(ref) == event_rows(fast)
        assert ref.memory.peak_all() == fast.memory.peak_all()
        return ref, fast

    def test_uniform_model_replicated_stages(self):
        model = uniform_model("eq", 8, 9e9, 1_000_000, 1e6, profile_batch=2)
        cluster = config_b(4)
        prof = profile_model(model)
        d = cluster.devices
        plan = ParallelPlan(
            model, [Stage(0, 4, tuple(d[:2])), Stage(4, 8, tuple(d[2:]))], 32, 8
        )
        self._exec_both(prof, cluster, plan)

    def test_vgg19_planned(self):
        prof = profile_model(get_model("vgg19"))
        cluster = config_b(4)
        plan = Planner(prof, cluster, 64).search().plan
        self._exec_both(prof, cluster, plan)

    def test_bert48_two_stage_gpipe_and_dapple(self):
        prof = profile_model(get_model("bert48"))
        cluster = config_a(16)
        d = cluster.devices
        plan = ParallelPlan(
            prof.graph,
            [Stage(0, 25, tuple(d[:8])), Stage(25, 50, tuple(d[8:]))],
            64,
            4,
        )
        for schedule in ("dapple", "gpipe"):
            self._exec_both(
                prof, cluster, plan, schedule=schedule, enforce_memory=False
            )

    def test_recompute_and_straggler(self):
        model = uniform_model("eq2", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
        cluster = config_b(2)
        prof = profile_model(model)
        d = cluster.devices
        plan = ParallelPlan(
            model, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
        )
        self._exec_both(
            prof, cluster, plan, recompute="sqrt", device_slowdown={0: 1.5}
        )

    def test_steady_state_sync_and_async(self):
        model = uniform_model("eq3", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
        cluster = config_b(2)
        prof = profile_model(model)
        for sync in (True, False):
            ref = simulate_iterations(
                prof, cluster, _two_stage_plan(model, cluster), num_iterations=3,
                sync=sync, sim_engine="reference",
            )
            fast = simulate_iterations(
                prof, cluster, _two_stage_plan(model, cluster), num_iterations=3,
                sync=sync, sim_engine="compiled",
            )
            assert ref.total_time == fast.total_time
            assert ref.iteration_ends == fast.iteration_ends
            assert [
                (e.name, e.start, e.end) for e in ref.trace.events
            ] == [(e.name, e.start, e.end) for e in fast.trace.events]

    def test_fig8_direct_graphs(self):
        ref = fig8.run(num_micro_batches=6, sim_engine="reference")
        fast = fig8.run(num_micro_batches=6, sim_engine="compiled")
        assert ref == fast


class TestPerturbedGraphEquivalence:
    """Seeded fault injection must preserve engine bit-identity.

    Perturbation rebuilds the graph with transformed durations *before*
    simulation, so both engines see the same perturbed graph — equivalence
    must hold for every (models, seed) combination, and a fixed seed must
    reproduce the exact same perturbed trace across runs.
    """

    MODELS = (
        ComputeJitter(sigma=0.2),
        SlowDevice(factor=1.7),
        TransientFailure(stall=0.8),
    )

    def _perturbed(self, seed, graph_seed=11):
        return perturb_graph(random_graph(graph_seed, 150, 4), self.MODELS, seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dag_jitter_equivalence(self, seed):
        ref, fast = run_both(lambda: self._perturbed(seed))
        assert_identical(ref, fast)

    def test_fixed_seed_reproducible_across_runs(self):
        a = Simulator(self._perturbed(3), engine="compiled").run()
        b = Simulator(self._perturbed(3), engine="compiled").run()
        assert a.makespan == b.makespan
        assert event_rows(a) == event_rows(b)

    def test_different_seeds_differ(self):
        a = Simulator(self._perturbed(3), engine="compiled").run()
        b = Simulator(self._perturbed(4), engine="compiled").run()
        assert event_rows(a) != event_rows(b)

    def test_executor_graph_perturbed_equivalence(self):
        model = uniform_model("eqf", 6, 9e9, 1_000_000, 1e6, profile_batch=2)
        cluster = config_b(2)
        prof = profile_model(model)
        plan = _two_stage_plan(model, cluster)
        ref = execute_plan_faulted(
            prof, cluster, plan, self.MODELS, seed=5, sim_engine="reference"
        )
        fast = execute_plan_faulted(
            prof, cluster, plan, self.MODELS, seed=5, sim_engine="compiled"
        )
        assert ref.makespan == fast.makespan
        assert event_rows(ref.result) == event_rows(fast.result)
        clean = execute_plan(prof, cluster, plan)
        assert fast.makespan > clean.iteration_time


def _two_stage_plan(model, cluster):
    d = cluster.devices
    return ParallelPlan(
        model, [Stage(0, 3, (d[0],)), Stage(3, 6, (d[1],))], 16, 4
    )


class TestEngineSelection:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            Simulator(TaskGraph(), engine="turbo")

    def test_env_var_selects_oracle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert Simulator(TaskGraph()).engine == "reference"
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        assert Simulator(TaskGraph()).engine == "compiled"

    def test_explicit_engine_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert Simulator(TaskGraph(), engine="compiled").engine == "compiled"


class TestColumnarTraceApi:
    def _result(self):
        return Simulator(random_graph(7, 80, 3), engine="compiled").run()

    def test_find_and_makespan(self):
        res = self._result()
        ev = res.trace.find("op0")
        assert ev.name == "op0"
        with pytest.raises(KeyError, match="got 0"):
            res.trace.find("missing")
        assert res.trace.makespan() == max(e.end for e in res.trace.events)

    def test_busy_time_matches_reference(self):
        fast = self._result()
        ref = Simulator(random_graph(7, 80, 3), engine="reference").run()
        for key in (f"res:{i}" for i in range(3)):
            assert fast.trace.busy_time(key) == ref.trace.busy_time(key)
            assert fast.trace.utilization(key) == ref.trace.utilization(key)

    def test_iter_rows_streams_without_events(self):
        res = self._result()
        rows = list(res.trace.iter_rows())
        assert rows == [
            (e.name, e.start, e.end, e.resources, e.tags)
            for e in res.trace.events
        ]

    def test_post_run_add_thaws_to_plain_trace(self):
        from repro.sim import TraceEvent

        res = self._result()
        n = len(res.trace.events)
        extra = TraceEvent("extra", 0.0, 1e9, ("res:0",))
        res.trace.add(extra)
        assert len(res.trace.events) == n + 1
        assert res.trace.makespan() == 1e9
        assert res.trace.find("extra") is extra
        assert extra in res.trace.by_resource("res:0")

"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Op, Simulator, TaskGraph
from repro.sim.engine import MemEffect


def build(ops, deps):
    g = TaskGraph()
    for op in ops:
        g.add(op)
    for a, b in deps:
        g.add_dep(a, b)
    return g


class TestTaskGraph:
    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add(Op("a", 1.0))
        with pytest.raises(ValueError):
            g.add(Op("a", 2.0))

    def test_unknown_dep_rejected(self):
        g = TaskGraph()
        g.add(Op("a", 1.0))
        with pytest.raises(KeyError):
            g.add_dep("a", "missing")
        with pytest.raises(KeyError):
            g.add_dep("missing", "a")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Op("bad", -1.0)

    def test_cycle_detected(self):
        # Validation is lazy: the cycle surfaces when the graph is run.
        g = build([Op("a", 1.0), Op("b", 1.0)], [("a", "b"), ("b", "a")])
        for engine in ("compiled", "reference"):
            with pytest.raises(ValueError, match="cycle"):
                Simulator(g, engine=engine).run()


class TestSequentialExecution:
    def test_single_op(self):
        g = build([Op("a", 2.5)], [])
        res = Simulator(g).run()
        assert res.makespan == pytest.approx(2.5)

    def test_chain_sums_durations(self):
        ops = [Op(f"op{i}", 1.0 + i) for i in range(5)]
        deps = [(f"op{i}", f"op{i+1}") for i in range(4)]
        res = Simulator(build(ops, deps)).run()
        assert res.makespan == pytest.approx(sum(1.0 + i for i in range(5)))

    def test_zero_duration_ops(self):
        g = build([Op("a", 0.0), Op("b", 0.0)], [("a", "b")])
        assert Simulator(g).run().makespan == 0.0

    def test_empty_graph(self):
        assert Simulator(TaskGraph()).run().makespan == 0.0


class TestParallelExecution:
    def test_independent_ops_same_resource_serialize(self):
        ops = [Op(f"op{i}", 1.0, resources=("gpu:0",)) for i in range(4)]
        res = Simulator(build(ops, [])).run()
        assert res.makespan == pytest.approx(4.0)

    def test_independent_ops_distinct_resources_parallel(self):
        ops = [Op(f"op{i}", 1.0, resources=(f"gpu:{i}",)) for i in range(4)]
        res = Simulator(build(ops, [])).run()
        assert res.makespan == pytest.approx(1.0)

    def test_no_resource_ops_run_concurrently(self):
        ops = [Op(f"op{i}", 3.0) for i in range(10)]
        res = Simulator(build(ops, [])).run()
        assert res.makespan == pytest.approx(3.0)

    def test_diamond_dependency(self):
        # a -> (b, c) -> d ; b and c on different devices run in parallel.
        ops = [
            Op("a", 1.0, resources=("gpu:0",)),
            Op("b", 2.0, resources=("gpu:0",)),
            Op("c", 3.0, resources=("gpu:1",)),
            Op("d", 1.0, resources=("gpu:0",)),
        ]
        deps = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        res = Simulator(build(ops, deps)).run()
        assert res.makespan == pytest.approx(1.0 + 3.0 + 1.0)

    def test_multi_resource_op_waits_for_all(self):
        # x holds gpu:0 for 5s; y needs gpu:0 AND gpu:1 so it waits; z needs
        # only gpu:1 and is ready first, so it runs before y.
        ops = [
            Op("x", 5.0, resources=("gpu:0",)),
            Op("y", 1.0, resources=("gpu:0", "gpu:1")),
            Op("z", 2.0, resources=("gpu:1",)),
        ]
        res = Simulator(build(ops, [])).run()
        ev = {e.name: e for e in res.trace.events}
        assert ev["z"].start == pytest.approx(0.0)
        assert ev["y"].start == pytest.approx(5.0)
        assert res.makespan == pytest.approx(6.0)


class TestPriority:
    def test_lower_priority_value_runs_first(self):
        ops = [
            Op("late", 1.0, resources=("gpu:0",), priority=2.0),
            Op("early", 1.0, resources=("gpu:0",), priority=1.0),
        ]
        res = Simulator(build(ops, [])).run()
        ev = {e.name: e for e in res.trace.events}
        assert ev["early"].start < ev["late"].start

    def test_fifo_tiebreak_is_submission_order(self):
        ops = [Op(f"op{i}", 1.0, resources=("gpu:0",)) for i in range(3)]
        res = Simulator(build(ops, [])).run()
        order = [e.name for e in res.trace.by_resource("gpu:0")]
        assert order == ["op0", "op1", "op2"]


class TestDeterminism:
    def test_repeated_runs_identical(self):
        ops = [
            Op(f"op{i}", 0.5 + (i % 3) * 0.25, resources=(f"gpu:{i % 2}",), priority=i % 4)
            for i in range(20)
        ]
        deps = [(f"op{i}", f"op{i+5}") for i in range(15)]
        g1 = build(ops, deps)
        ops2 = [
            Op(f"op{i}", 0.5 + (i % 3) * 0.25, resources=(f"gpu:{i % 2}",), priority=i % 4)
            for i in range(20)
        ]
        g2 = build(ops2, deps)
        t1 = [(e.name, e.start, e.end) for e in Simulator(g1).run().trace.events]
        t2 = [(e.name, e.start, e.end) for e in Simulator(g2).run().trace.events]
        assert t1 == t2


class TestMemoryAccounting:
    def test_alloc_and_free(self):
        op_a = Op("alloc", 1.0, resources=("gpu:0",))
        op_a.mem_effects.append(MemEffect("gpu:0", 100.0))
        op_b = Op("free", 1.0, resources=("gpu:0",))
        op_b.mem_effects.append(MemEffect("gpu:0", -100.0, at_end=True))
        g = build([op_a, op_b], [("alloc", "free")])
        res = Simulator(g).run()
        assert res.memory.peak("gpu:0") == pytest.approx(100.0)
        assert res.memory.final("gpu:0") == pytest.approx(0.0)

    def test_free_before_alloc_at_same_time(self):
        # b frees at t=1 (end); c allocates at t=1 (start): peak must be 100,
        # not 200, because end-phase deltas apply first.
        a = Op("a", 1.0, resources=("gpu:0",))
        a.mem_effects.append(MemEffect("gpu:0", 100.0))
        a.mem_effects.append(MemEffect("gpu:0", -100.0, at_end=True))
        c = Op("c", 1.0, resources=("gpu:0",))
        c.mem_effects.append(MemEffect("gpu:0", 100.0))
        g = build([a, c], [("a", "c")])
        res = Simulator(g).run()
        assert res.memory.peak("gpu:0") == pytest.approx(100.0)

    def test_concurrent_allocations_stack(self):
        ops = []
        for i in range(3):
            op = Op(f"op{i}", 2.0, resources=(f"gpu:{i}",))
            op.mem_effects.append(MemEffect("shared", 50.0))
            op.mem_effects.append(MemEffect("shared", -50.0, at_end=True))
            ops.append(op)
        res = Simulator(build(ops, [])).run()
        assert res.memory.peak("shared") == pytest.approx(150.0)


class TestTrace:
    def test_utilization(self):
        ops = [
            Op("a", 1.0, resources=("gpu:0",)),
            Op("b", 1.0, resources=("gpu:1",)),
            Op("c", 2.0, resources=("gpu:1",)),
        ]
        res = Simulator(build(ops, [("a", "c")])).run()
        assert res.trace.utilization("gpu:1") == pytest.approx(1.0)
        assert res.trace.utilization("gpu:0") == pytest.approx(1.0 / 3.0)

    def test_find_unique(self):
        res = Simulator(build([Op("only", 1.0)], [])).run()
        assert res.trace.find("only").duration == pytest.approx(1.0)
        with pytest.raises(KeyError):
            res.trace.find("absent")

"""Unit tests for traces and memory timelines."""

import numpy as np
import pytest

from repro.sim.trace import MemoryTimeline, Trace, TraceEvent, PHASE_END, PHASE_START


class TestMemoryTimeline:
    def test_empty_device(self):
        tl = MemoryTimeline()
        assert tl.peak("gpu:0") == 0.0
        assert tl.usage_at("gpu:0", 10.0) == 0.0

    def test_single_alloc(self):
        tl = MemoryTimeline()
        tl.record("d", 1.0, 64.0)
        assert tl.peak("d") == 64.0
        assert tl.usage_at("d", 0.5) == 0.0
        assert tl.usage_at("d", 1.0) == 64.0
        assert tl.usage_at("d", 5.0) == 64.0

    def test_alloc_free_cycle(self):
        tl = MemoryTimeline()
        tl.record("d", 0.0, 10.0)
        tl.record("d", 1.0, 20.0)
        tl.record("d", 2.0, -10.0)
        assert tl.peak("d") == 30.0
        assert tl.usage_at("d", 2.0) == 20.0
        assert tl.final("d") == 20.0

    def test_phase_ordering_at_equal_time(self):
        tl = MemoryTimeline()
        tl.record("d", 0.0, 100.0, PHASE_START)
        tl.record("d", 1.0, -100.0, PHASE_END)
        tl.record("d", 1.0, 100.0, PHASE_START)
        # End (free) applies before start (alloc) at t=1 -> peak stays 100.
        assert tl.peak("d") == 100.0

    def test_curve_sampling(self):
        tl = MemoryTimeline()
        tl.record("d", 0.0, 10.0)
        tl.record("d", 5.0, 10.0)
        t, u = tl.curve("d", num_points=11, until=10.0)
        assert len(t) == 11
        assert u[0] == 10.0
        assert u[-1] == 20.0
        assert np.all(np.diff(u) >= 0)

    def test_devices_sorted(self):
        tl = MemoryTimeline()
        tl.record("b", 0.0, 1.0)
        tl.record("a", 0.0, 1.0)
        assert tl.devices() == ["a", "b"]

    def test_cache_invalidated_on_new_record(self):
        tl = MemoryTimeline()
        tl.record("d", 0.0, 5.0)
        assert tl.peak("d") == 5.0
        tl.record("d", 1.0, 5.0)
        assert tl.peak("d") == 10.0


class TestTrace:
    def _mk(self, name, start, end, res=("r",)):
        return TraceEvent(name=name, start=start, end=end, resources=tuple(res))

    def test_makespan_empty(self):
        assert Trace().makespan() == 0.0

    def test_by_resource_sorted(self):
        tr = Trace()
        tr.add(self._mk("b", 2.0, 3.0))
        tr.add(self._mk("a", 0.0, 1.0))
        tr.add(self._mk("c", 1.0, 2.0, res=("other",)))
        assert [e.name for e in tr.by_resource("r")] == ["a", "b"]

    def test_busy_time(self):
        tr = Trace()
        tr.add(self._mk("a", 0.0, 1.5))
        tr.add(self._mk("b", 2.0, 3.0))
        assert tr.busy_time("r") == pytest.approx(2.5)

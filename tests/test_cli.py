"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestExitCodes:
    def test_unknown_model_exits_2(self, capsys):
        assert main(["plan", "--model", "frobnicate"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_config_exits_2(self, capsys):
        assert main(["run", "--model", "gnmt16", "--devices", "3"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_argparse_rejection_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["plan", "--config", "Z"])
        assert exc.value.code == 2


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("bert48", "gnmt16", "vgg19", "amoebanet36"):
            assert name in out


class TestPlan:
    def test_plan_resnet_is_dp(self, capsys):
        assert main(["plan", "--model", "resnet50", "--config", "A", "--gbs", "2048"]) == 0
        out = capsys.readouterr().out
        assert "plan    : DP" in out

    def test_plan_save_and_run(self, capsys, tmp_path):
        plan_file = str(tmp_path / "plan.json")
        assert main([
            "plan", "--model", "gnmt16", "--config", "A", "--gbs", "1024",
            "--save", plan_file,
        ]) == 0
        data = json.loads(open(plan_file).read())
        assert data["model"] == "GNMT-16"
        capsys.readouterr()
        assert main([
            "run", "--model", "gnmt16", "--config", "A", "--gbs", "1024",
            "--plan", plan_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out
        assert "samples/s" in out

    def test_pipeline_only_flag(self, capsys):
        assert main([
            "plan", "--model", "resnet50", "--config", "A", "--gbs", "2048",
            "--pipeline-only", "--max-stages", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "plan    : DP" not in out


class TestRun:
    def test_run_with_gantt_and_trace(self, capsys, tmp_path):
        trace_file = str(tmp_path / "trace.json")
        assert main([
            "run", "--model", "gnmt16", "--config", "B", "--gbs", "512",
            "--gantt", "--trace", trace_file, "--recompute", "sqrt",
            "--warmup", "PB",
        ]) == 0
        out = capsys.readouterr().out
        assert "gpu:" in out  # gantt rows
        payload = json.loads(open(trace_file).read())
        assert payload["traceEvents"]

    def test_gpipe_schedule_option(self, capsys):
        assert main([
            "run", "--model", "gnmt16", "--config", "B", "--gbs", "256",
            "--schedule", "gpipe",
        ]) == 0


class TestObservability:
    ARGS = ["--model", "gnmt16", "--config", "B", "--gbs", "256"]

    def test_plan_explain_prints_decomposition(self, capsys):
        assert main(["plan", *self.ARGS, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "L = Tw + Ts + Te" in out
        assert "per-extended-stage decomposition" in out

    def test_plan_metrics_prints_summary_tables(self, capsys):
        assert main(["plan", *self.ARGS, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Instrumentation spans" in out
        assert "planner.search" in out
        assert "planner.plans_evaluated" in out

    def test_plan_trace_jsonl_validates(self, capsys, tmp_path):
        from repro.obs.schema import validate_jsonl

        log = tmp_path / "plan.jsonl"
        assert main(["plan", *self.ARGS, "--trace", str(log)]) == 0
        assert validate_jsonl(log) > 1

    def test_run_trace_unifies_sim_and_spans(self, capsys, tmp_path):
        from repro.obs.sinks import OBS_PID, SIM_PID

        trace = tmp_path / "run.json"
        assert main(["run", *self.ARGS, "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {SIM_PID, OBS_PID}
        span_names = {e["name"] for e in xs if e["pid"] == OBS_PID}
        assert "sim.run" in span_names

    def test_run_metrics_includes_sim_counters(self, capsys):
        assert main(["run", *self.ARGS, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "sim.events" in out
        assert "sim.occupancy" in out

    def test_faults_metrics_includes_ensemble_series(self, capsys):
        assert main([
            "faults", "--model", "vgg19", "--config", "B", "--devices", "4",
            "--gbs", "64", "--ensemble", "2", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults.seeds_evaluated" in out
        assert "faults.ensemble_seconds" in out


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "--model", "vgg19", "--config", "C", "--gbs", "512"]) == 0
        out = capsys.readouterr().out
        assert "DAPPLE" in out
        assert "DP + overlap" in out
        assert "PipeDream" in out


class TestExperiment:
    def test_single_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "fig8"]) == 0
        assert (tmp_path / "fig8.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])

    def test_seed_flag_reaches_seeded_experiments(self):
        import inspect

        from repro.cli import EXPERIMENTS

        args = build_parser().parse_args(["experiment", "convergence", "--seed", "7"])
        assert args.seed == 7
        # Every seeded experiment driver accepts the plumbed kwarg.
        import importlib

        for name in ("convergence", "straggler_sweep"):
            assert name in EXPERIMENTS
            mod = importlib.import_module(f"repro.experiments.{name}")
            assert "seed" in inspect.signature(mod.run).parameters


class TestFaults:
    def test_faults_table_for_three_systems(self, capsys):
        assert main([
            "faults", "--model", "vgg19", "--config", "B", "--devices", "4",
            "--gbs", "64", "--ensemble", "3",
        ]) == 0
        out = capsys.readouterr().out
        for label in ("DAPPLE", "GPipe", "DP", "clean", "p95"):
            assert label in out

    def test_faults_seed_changes_header_not_determinism(self, capsys):
        argv = ["faults", "--model", "vgg19", "--config", "B", "--devices", "4",
                "--gbs", "64", "--ensemble", "3", "--jitter", "0.2",
                "--straggler", "1.0"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert main(argv + ["--seed", "9"]) == 0
        assert "seed base 9" in capsys.readouterr().out

    def test_faults_robust_k_prints_candidates(self, capsys):
        assert main([
            "faults", "--model", "vgg19", "--config", "B", "--devices", "4",
            "--gbs", "64", "--ensemble", "3", "--robust-k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Robust selection" in out
        assert "clean-opt" in out

    def test_faults_without_models_errors(self, capsys):
        assert main([
            "faults", "--model", "vgg19", "--config", "B", "--devices", "4",
            "--straggler", "1.0", "--jitter", "0.0",
        ]) == 1
        assert "no perturbation" in capsys.readouterr().err


class TestServeCLI:
    """`repro submit` / `repro cache` against an in-process service."""

    @pytest.fixture()
    def server(self, tmp_path):
        from repro.serve import PlanServer

        srv = PlanServer(
            workers=1, exec_mode="inline", queue_depth=8,
            data_dir=tmp_path / "serve",
        ).start()
        try:
            yield srv
        finally:
            srv.close()

    def test_submit_prints_served_plan(self, capsys, server):
        argv = ["submit", "--url", server.url, "--model", "vgg19",
                "--config", "C", "--devices", "16"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "plan     :" in out
        assert "latency  :" in out
        assert "fresh search" in out
        # identical request: served from the content-addressed cache
        assert main(argv) == 0
        assert "plan-cache hit" in capsys.readouterr().out

    def test_submit_json_output(self, capsys, server):
        assert main(["submit", "--url", server.url, "--model", "vgg19",
                     "--config", "C", "--devices", "16", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["schema"] == "plan-response-v1"
        assert result["plan"]["stages"]

    def test_submit_no_wait_prints_status_url(self, capsys, server):
        assert main(["submit", "--url", server.url, "--model", "vgg19",
                     "--config", "C", "--devices", "16", "--no-wait"]) == 0
        out = capsys.readouterr().out
        assert "/v1/jobs/job-" in out

    def test_submit_bad_request_exits_2(self, capsys, server):
        # config A needs a multiple of 8 devices; the service 400s
        assert main(["submit", "--url", server.url, "--model", "vgg19",
                     "--config", "A", "--devices", "12"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_unreachable_service_exits_1(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:9",
                     "--model", "vgg19", "--timeout", "2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_stats_and_clear(self, capsys, server):
        assert main(["submit", "--url", server.url, "--model", "vgg19",
                     "--config", "C", "--devices", "16"]) == 0
        capsys.readouterr()
        cache_dir = str(server.cache.directory)
        assert main(["cache", "stats", "--plan-cache", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "disk entries" in out
        assert main(["cache", "clear", "--plan-cache", cache_dir]) == 0
        assert "cleared 1 entry" in capsys.readouterr().out
        assert main(["cache", "stats", "--plan-cache", cache_dir]) == 0
        assert "| 0" in capsys.readouterr().out.replace("  ", " ")

    def test_cache_clear_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["cache", "clear", "--plan-cache",
                     str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

"""Unit tests of the cheap experiment modules and reporting helpers.

The full reproductions run under ``benchmarks/``; here we verify the
structure and fast invariants so a plain ``pytest tests/`` exercises the
experiment code paths too.
"""

import pytest

from repro.experiments import fig7, fig8, table1, table2
from repro.experiments.reporting import format_table, write_result


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "22"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[2:])

    def test_format_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_write_result(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("unit_test", "hello")
        assert path.read_text() == "hello\n"
        assert "unit_test" in capsys.readouterr().out


class TestTable1:
    def test_rows_structure(self):
        rows = table1.run()
        assert len(rows) == 5
        for r in rows:
            assert r.gradient_bytes > r.activation_bytes
        assert "Table I" in table1.format_results(rows)


class TestTable2:
    def test_rows_structure(self):
        rows = table2.run()
        assert len(rows) == 6
        assert all(r.memory_bytes > 0 for r in rows)
        text = table2.format_results(rows)
        assert "BERT-48" in text


class TestFig7:
    def test_best_split_is_uneven_at_small_m(self):
        rows = fig7.run()
        best = fig7.best_split(rows)
        assert best.layers_stage0 != best.layers_stage1

    def test_all_splits_covered(self):
        rows = fig7.run(num_layers=6)
        assert [r.split for r in rows] == list(range(1, 6))


class TestFig8:
    def test_split_advantage(self):
        res = fig8.run()
        assert res.split_advantage > 1.0
        assert "splitting wins" in fig8.format_results(res)

    def test_custom_parameters(self):
        res = fig8.run(num_micro_batches=3, t1=5e-3)
        assert res.split_makespan > 0

"""Public-API surface tests: every advertised export exists and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.models",
    "repro.core",
    "repro.runtime",
    "repro.baselines",
    "repro.training",
    "repro.viz",
    "repro.experiments",
    "repro.faults",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_star_import_is_clean():
    ns: dict = {}
    exec("from repro import *", ns)
    assert "plan_and_run" in ns


@pytest.mark.parametrize(
    "name",
    ["table1", "table2", "table3", "table4", "table5", "table6", "table7",
     "table8", "fig3", "fig4", "fig7", "fig8", "fig12", "fig14",
     "convergence", "bandwidth_sweep", "straggler_sweep"],
)
def test_experiment_modules_expose_run_and_format(name):
    mod = importlib.import_module(f"repro.experiments.{name}")
    assert callable(mod.run)
    assert callable(mod.format_results)


def test_cli_experiment_registry_consistent():
    from repro.cli import EXPERIMENTS

    for name in EXPERIMENTS:
        importlib.import_module(f"repro.experiments.{name}")

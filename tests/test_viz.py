"""Tests for ASCII Gantt and memory-curve rendering."""

from repro.sim import Op, Simulator, TaskGraph
from repro.sim.trace import MemoryTimeline
from repro.viz import render_gantt, render_memory_curve


def run_pipeline():
    g = TaskGraph()
    g.add(Op("F/s0/m0", 1.0, resources=("gpu:0",), tags={"kind": "F", "mb": 0}))
    g.add(Op("B/s0/m0", 2.0, resources=("gpu:0",), tags={"kind": "B", "mb": 0}))
    g.add(Op("F/s1/m0", 1.0, resources=("gpu:1",), tags={"kind": "F", "mb": 0}))
    g.add(Op("ar", 0.5, resources=("ar:0",), tags={"kind": "AR"}))
    g.add_dep("F/s0/m0", "F/s1/m0")
    g.add_dep("F/s1/m0", "B/s0/m0")
    g.add_dep("B/s0/m0", "ar")
    return Simulator(g).run()


class TestGantt:
    def test_rows_for_gpus_only_by_default(self):
        out = render_gantt(run_pipeline().trace, width=40)
        assert "gpu:0" in out and "gpu:1" in out
        assert "ar:0" not in out

    def test_explicit_resources(self):
        out = render_gantt(run_pipeline().trace, width=40, resources=["ar:0"])
        assert "ar:0" in out

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        assert render_gantt(Trace()) == "(empty trace)"

    def test_forward_digit_and_backward_marker(self):
        out = render_gantt(run_pipeline().trace, width=40)
        row0 = next(l for l in out.splitlines() if "gpu:0" in l)
        assert "0" in row0
        assert "'" in row0  # backward marker

    def test_fixed_width(self):
        out = render_gantt(run_pipeline().trace, width=40)
        for line in out.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40


class TestMemoryCurve:
    def test_renders_peak(self):
        tl = MemoryTimeline()
        tl.record("gpu:0", 0.0, 2 * 2**30)
        tl.record("gpu:0", 1.0, 2 * 2**30)
        out = render_memory_curve(tl, "gpu:0", width=20, height=4)
        assert "peak 4.00 GiB" in out
        assert "█" in out

    def test_no_activity(self):
        tl = MemoryTimeline()
        out = render_memory_curve(tl, "gpu:9")
        assert "no memory activity" in out

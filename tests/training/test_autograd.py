"""Unit tests for the numpy autograd engine, checked against finite differences."""

import numpy as np
import pytest

from repro.training.autograd import Tensor, no_grad


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f(x)
        flat[i] = old - eps
        lo = f(x)
        flat[i] = old
        gf[i] = (hi - lo) / (2 * eps)
    return g


class TestBasicOps:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_sub_grad(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1])
        assert np.allclose(b.grad, [-1])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4, 5])
        assert np.allclose(b.grad, [2, 3])

    def test_scalar_mul(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 * a).sum().backward()
        assert np.allclose(a.grad, [3.0])

    def test_matmul_grad(self):
        rng = np.random.default_rng(0)
        a_val = rng.standard_normal((3, 4))
        w_val = rng.standard_normal((4, 2))
        a = Tensor(a_val, requires_grad=True)
        w = Tensor(w_val, requires_grad=True)
        (a @ w).sum().backward()
        num = numeric_grad(lambda v: (v @ w_val).sum(), a_val.copy())
        assert np.allclose(a.grad, num, atol=1e-5)
        num_w = numeric_grad(lambda v: (a_val @ v).sum(), w_val.copy())
        assert np.allclose(w.grad, num_w, atol=1e-5)

    def test_relu_grad(self):
        a = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0, 0, 1])

    def test_tanh_grad(self):
        x_val = np.array([0.3, -0.7])
        a = Tensor(x_val, requires_grad=True)
        a.tanh().sum().backward()
        num = numeric_grad(lambda v: np.tanh(v).sum(), x_val.copy())
        assert np.allclose(a.grad, num, atol=1e-6)

    def test_mean_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full((2, 3), 1 / 6))

    def test_broadcast_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert np.allclose(b.grad, [4, 4, 4])


class TestGraphMechanics:
    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * Tensor([2.0])).sum().backward()
        (a * Tensor([3.0])).sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_diamond_reuse(self):
        # y = a*a + a*a reuses `a` along two paths.
        a = Tensor([3.0], requires_grad=True)
        y = a * a + a * a
        y.sum().backward()
        assert np.allclose(a.grad, [12.0])

    def test_backward_nonscalar_needs_seed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * a).backward()

    def test_backward_with_seed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * a).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [2.0, 40.0])

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * Tensor([2.0])
        assert not out.requires_grad

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * a).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(5000):
            x = x + Tensor([0.0])
        x.sum().backward()
        assert np.allclose(a.grad, [1.0])

"""Finite-difference tests for the extended autograd ops and layers."""

import numpy as np
import pytest

from repro.training.autograd import Tensor
from repro.training.layers import Dropout, Embedding, LayerNorm, Sigmoid

from tests.training.test_autograd import numeric_grad


def check_grad(f_tensor, f_np, x_val, atol=1e-5):
    x = Tensor(x_val.copy(), requires_grad=True)
    f_tensor(x).sum().backward()
    num = numeric_grad(lambda v: f_np(v).sum(), x_val.copy())
    np.testing.assert_allclose(x.grad, num, atol=atol)


class TestExtendedOps:
    def setup_method(self):
        self.x = np.random.default_rng(0).uniform(0.5, 2.0, (3, 4))

    def test_div(self):
        b = Tensor(np.full((3, 4), 2.0), requires_grad=True)
        a = Tensor(self.x, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 4), 0.5))
        np.testing.assert_allclose(b.grad, -self.x / 4.0)

    def test_neg(self):
        a = Tensor(self.x, requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, -np.ones_like(self.x))

    def test_exp(self):
        check_grad(lambda t: t.exp(), np.exp, self.x)

    def test_log(self):
        check_grad(lambda t: t.log(), np.log, self.x)

    def test_pow(self):
        check_grad(lambda t: t.pow(3.0), lambda v: v**3, self.x)

    def test_sqrt(self):
        check_grad(lambda t: t.sqrt(), np.sqrt, self.x)

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), lambda v: 1 / (1 + np.exp(-v)), self.x)

    def test_reshape(self):
        a = Tensor(self.x, requires_grad=True)
        a.reshape(12).sum().backward()
        assert a.grad.shape == (3, 4)
        np.testing.assert_allclose(a.grad, 1.0)

    def test_getitem_scatter(self):
        a = Tensor(self.x, requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        expected = np.zeros_like(self.x)
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_sum_axis(self):
        a = Tensor(self.x, requires_grad=True)
        a.sum_axis(1).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)

    def test_mean_axis(self):
        a = Tensor(self.x, requires_grad=True)
        a.mean_axis(0, keepdims=False).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / 3)

    def test_softmax_rows_sum_to_one(self):
        out = Tensor(self.x).softmax()
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_grad(self):
        def np_softmax(v):
            z = v - v.max(axis=-1, keepdims=True)
            e = np.exp(z)
            return e / e.sum(axis=-1, keepdims=True)

        w = np.random.default_rng(1).standard_normal((3, 4))
        check_grad(
            lambda t: t.softmax() * Tensor(w),
            lambda v: np_softmax(v) * w,
            self.x,
        )


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)) * 5 + 3)
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-4)

    def test_gradients_flow_to_gamma_beta(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(2).standard_normal((2, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None
        np.testing.assert_allclose(ln.beta.grad, [2, 2, 2, 2])

    def test_grad_matches_numeric(self):
        ln = LayerNorm(5)
        x_val = np.random.default_rng(3).standard_normal((3, 5))

        def f_np(v):
            mu = v.mean(-1, keepdims=True)
            var = ((v - mu) ** 2).mean(-1, keepdims=True)
            return ((v - mu) / np.sqrt(var + 1e-5)).sum()

        x = Tensor(x_val.copy(), requires_grad=True)
        ln(x).sum().backward()
        num = numeric_grad(lambda v: f_np(v), x_val.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-5)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[1], out.data[2])

    def test_grad_accumulates_on_repeated_tokens(self):
        emb = Embedding(10, 4)
        emb(np.array([5, 5, 2])).sum().backward()
        np.testing.assert_allclose(emb.table.grad[5], 2.0)
        np.testing.assert_allclose(emb.table.grad[2], 1.0)
        np.testing.assert_allclose(emb.table.grad[0], 0.0)


class TestDropout:
    def test_identity_when_not_training(self):
        d = Dropout(0.5)
        x = Tensor(np.ones((4, 4)))
        assert d(x) is x

    def test_scaling_preserves_expectation(self):
        d = Dropout(0.5)
        d.training = True
        d.seed = 7
        x = Tensor(np.ones((1000, 16)))
        out = d(x)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_same_seed_same_mask(self):
        d1, d2 = Dropout(0.3), Dropout(0.3)
        d1.training = d2.training = True
        d1.seed = d2.seed = 99
        x = Tensor(np.ones((8, 8)))
        np.testing.assert_allclose(d1(x).data, d2(x).data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

"""DP-trainer gradient-equivalence tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training import SGD, Tensor, mse_loss, sequential_step_gradients
from repro.training.data_parallel_trainer import DataParallelTrainer
from tests.training.test_equivalence import (
    assert_grads_equal,
    loss_fn,
    make_data,
    make_model,
)


class TestDPEquivalence:
    def test_matches_sequential(self):
        model = make_model()
        x, y = make_data(n=24)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = DataParallelTrainer(model, num_workers=4)
        loss, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref)

    def test_gradient_accumulation_equivalent(self):
        model = make_model()
        x, y = make_data(n=24)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = DataParallelTrainer(model, num_workers=3, micro_batches_per_worker=4)
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref)

    def test_uneven_shards(self):
        model = make_model()
        x, y = make_data(n=10)  # 10 samples over 4 workers: 3,3,2,2
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = DataParallelTrainer(model, num_workers=4)
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref)

    @given(
        workers=st.integers(min_value=1, max_value=6),
        micro=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, workers, micro, seed):
        model = make_model(seed=seed)
        x, y = make_data(seed=seed + 1, n=24)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = DataParallelTrainer(model, num_workers=workers, micro_batches_per_worker=micro)
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref, tol=1e-8)

    def test_training_loop_identical(self):
        seq_model = make_model(seed=3)
        dp_model = make_model(seed=3)
        x, y = make_data(seed=4, n=16)
        seq_opt = SGD(seq_model.parameters(), lr=0.05)
        dp_opt = SGD(dp_model.parameters(), lr=0.05)
        tr = DataParallelTrainer(dp_model, num_workers=4, micro_batches_per_worker=2)
        for _ in range(5):
            _, g = sequential_step_gradients(seq_model, x, y, loss_fn)
            seq_opt.step(g)
            tr.train_step(x, y, loss_fn, dp_opt)
        for ps, pd in zip(seq_model.parameters(), dp_model.parameters()):
            np.testing.assert_allclose(ps.data, pd.data, rtol=1e-9, atol=1e-9)

    def test_invalid_args(self):
        model = make_model()
        with pytest.raises(ValueError):
            DataParallelTrainer(model, num_workers=0)
        with pytest.raises(ValueError):
            DataParallelTrainer(model, num_workers=2, micro_batches_per_worker=0)


class TestDPvsPipelineCrossCheck:
    def test_dp_and_pipeline_gradients_identical(self):
        """Both parallelization families give the same gradients — hence
        any DAPPLE hybrid of them does too."""
        from repro.training import PipelineTrainer

        model = make_model(seed=11)
        x, y = make_data(seed=12, n=24)
        dp = DataParallelTrainer(model, num_workers=3)
        pipe = PipelineTrainer(model, [3], num_micro_batches=4, replicas=[2, 1])
        _, g_dp = dp.step_gradients(x, y, loss_fn)
        _, g_pipe = pipe.step_gradients(x, y, loss_fn)
        assert_grads_equal(g_dp, g_pipe)

"""Tests for the empirical (wall-clock) profiler bridge."""

import numpy as np
import pytest

from repro.cluster import config_b
from repro.core import Planner, profile_model
from repro.training import Linear, Sequential, Tanh
from repro.training.empirical_profiler import (
    _calibrate_flops,
    measure_model,
    profile_sequential,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    return Sequential(
        Linear(64, 256, rng), Tanh(), Linear(256, 256, rng), Tanh(), Linear(256, 16, rng)
    )


@pytest.fixture
def sample():
    return np.random.default_rng(1).standard_normal((32, 64))


class TestMeasurement:
    def test_one_row_per_module(self, model, sample):
        rows = measure_model(model, sample, repeats=1)
        assert len(rows) == 5
        assert all(r.fwd_seconds > 0 and r.bwd_seconds > 0 for r in rows)

    def test_param_counts_match(self, model, sample):
        rows = measure_model(model, sample, repeats=1)
        assert rows[0].params == 64 * 256 + 256
        assert rows[1].params == 0  # Tanh
        assert sum(r.params for r in rows) == sum(
            p.data.size for p in model.parameters()
        )

    def test_activation_bytes_per_sample(self, model, sample):
        rows = measure_model(model, sample, repeats=1)
        # First Linear outputs (32, 256) float64 -> 2048 B per sample.
        assert rows[0].activation_bytes == pytest.approx(256 * 8)

    def test_repeats_validated(self, model, sample):
        with pytest.raises(ValueError):
            measure_model(model, sample, repeats=0)


class TestProfileSequential:
    def test_produces_valid_layer_graph(self, model, sample):
        graph = profile_sequential(model, sample, host_flops=1e10)
        assert graph.num_layers == 5
        assert graph.total_params == sum(p.data.size for p in model.parameters())
        graph._check_range(0, 5)

    def test_plannable(self, model, sample):
        """The measured graph feeds the planner end to end (Fig. 1 flow)."""
        graph = profile_sequential(model, sample, host_flops=1e10)
        prof = profile_model(graph)
        result = Planner(prof, config_b(2), 64).search()
        result.plan.validate()
        assert result.estimate.latency > 0

    def test_heavier_layer_measures_heavier(self, sample):
        rng = np.random.default_rng(5)
        model = Sequential(Linear(64, 64, rng), Linear(64, 1024, rng))
        graph = profile_sequential(model, sample, host_flops=1e10)
        assert graph.layers[1].flops_fwd > graph.layers[0].flops_fwd


class TestCalibration:
    def test_host_flops_positive_and_sane(self):
        f = _calibrate_flops(seconds=0.02)
        assert 1e8 < f < 1e13  # any real machine lands in this band

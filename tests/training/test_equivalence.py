"""Gradient-equivalence tests: DAPPLE pipelining preserves exact gradients.

These are the executable version of the paper's §VI-A claim: "all the
pipeline latency optimizations proposed in this paper give equivalent
gradients for training when keeping global batch size fixed and thus
convergence is safely preserved."
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training import (
    SGD,
    Adam,
    Linear,
    PipelineTrainer,
    Sequential,
    Tanh,
    Tensor,
    mse_loss,
    sequential_step_gradients,
    softmax_cross_entropy,
)


def make_model(seed=0, dims=(6, 12, 12, 12, 3)):
    rng = np.random.default_rng(seed)
    layers = []
    for i in range(len(dims) - 1):
        layers.append(Linear(dims[i], dims[i + 1], rng))
        if i < len(dims) - 2:
            layers.append(Tanh())
    return Sequential(*layers)


def make_data(seed=1, n=16, in_dim=6, out_dim=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, in_dim)), rng.standard_normal((n, out_dim))


def loss_fn(pred, target, normalizer):
    return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)


def assert_grads_equal(a, b, tol=1e-9):
    assert len(a) == len(b)
    for ga, gb in zip(a, b):
        np.testing.assert_allclose(ga, gb, rtol=tol, atol=tol)


class TestGradientEquivalence:
    def test_two_stage_pipeline_matches_sequential(self):
        model = make_model()
        x, y = make_data()
        ref_loss, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = PipelineTrainer(model, split_points=[3], num_micro_batches=4)
        loss, grads = tr.step_gradients(x, y, loss_fn)
        assert loss == pytest.approx(ref_loss, rel=1e-12)
        assert_grads_equal(grads, ref)

    def test_many_micro_batches(self):
        model = make_model()
        x, y = make_data(n=32)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        for m in (1, 2, 8, 16, 32):
            tr = PipelineTrainer(model, [3], num_micro_batches=m)
            _, grads = tr.step_gradients(x, y, loss_fn)
            assert_grads_equal(grads, ref)

    def test_replicated_stage_matches_sequential(self):
        """Fig. 8a semantics: micro-batch sliced across stage replicas."""
        model = make_model()
        x, y = make_data(n=24)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = PipelineTrainer(model, [3], num_micro_batches=3, replicas=[2, 3])
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref)

    def test_three_stage_uneven_split(self):
        model = make_model()
        x, y = make_data(n=16)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = PipelineTrainer(model, [1, 5], num_micro_batches=4, replicas=[1, 2, 1])
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref)

    def test_pb_policy_same_gradients(self):
        model = make_model()
        x, y = make_data()
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = PipelineTrainer(model, [3], num_micro_batches=4, warmup_policy="PB")
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref)

    def test_cross_entropy_task(self):
        model = make_model(dims=(6, 16, 16, 5))
        rng = np.random.default_rng(3)
        x = rng.standard_normal((12, 6))
        labels = rng.integers(0, 5, 12)

        def ce(pred, target, normalizer):
            return softmax_cross_entropy(pred, target, normalizer=normalizer)

        _, ref = sequential_step_gradients(model, x, labels, ce)
        tr = PipelineTrainer(model, [2], num_micro_batches=4, replicas=[2, 1])
        _, grads = tr.step_gradients(x, labels, ce)
        assert_grads_equal(grads, ref)

    @given(
        m=st.sampled_from([1, 2, 4, 8]),
        split=st.integers(min_value=1, max_value=6),
        r0=st.integers(min_value=1, max_value=3),
        r1=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, m, split, r0, r1, seed):
        """For any split/replication/micro-batching, gradients match."""
        model = make_model(seed=seed)
        x, y = make_data(seed=seed + 1, n=24)
        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = PipelineTrainer(model, [split], num_micro_batches=m, replicas=[r0, r1])
        _, grads = tr.step_gradients(x, y, loss_fn)
        assert_grads_equal(grads, ref, tol=1e-8)


class TestTrainingLoop:
    def test_pipelined_training_identical_to_sequential(self):
        """Multiple optimizer steps stay bit-comparable to sequential SGD."""
        seq_model = make_model(seed=5)
        pipe_model = make_model(seed=5)
        x, y = make_data(seed=6, n=16)

        seq_opt = SGD(seq_model.parameters(), lr=0.05)
        pipe_opt = SGD(pipe_model.parameters(), lr=0.05)
        tr = PipelineTrainer(pipe_model, [3], num_micro_batches=4, replicas=[2, 1])

        for step in range(10):
            _, g = sequential_step_gradients(seq_model, x, y, loss_fn)
            seq_opt.step(g)
            tr.train_step(x, y, loss_fn, pipe_opt)
            for ps, pp in zip(seq_model.parameters(), pipe_model.parameters()):
                np.testing.assert_allclose(ps.data, pp.data, rtol=1e-9, atol=1e-9)

    def test_loss_decreases(self):
        model = make_model(seed=9)
        x, y = make_data(seed=10, n=32)
        tr = PipelineTrainer(model, [3], num_micro_batches=4)
        opt = Adam(model.parameters(), lr=0.01)
        losses = [tr.train_step(x, y, loss_fn, opt) for _ in range(60)]
        assert losses[-1] < losses[0] * 0.5

    def test_invalid_batch_split(self):
        model = make_model()
        x, y = make_data(n=10)
        tr = PipelineTrainer(model, [3], num_micro_batches=4)
        with pytest.raises(ValueError):
            tr.step_gradients(x, y, loss_fn)

    def test_invalid_splits_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            PipelineTrainer(model, [5, 2], num_micro_batches=2)
        with pytest.raises(ValueError):
            PipelineTrainer(model, [3], num_micro_batches=2, replicas=[1])
        with pytest.raises(ValueError):
            PipelineTrainer(model, [3], num_micro_batches=2, replicas=[0, 1])

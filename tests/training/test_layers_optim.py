"""Unit tests for layers, losses, and optimizers."""

import numpy as np
import pytest

from repro.training import (
    SGD,
    Adam,
    Linear,
    ReLU,
    RMSProp,
    Sequential,
    Tanh,
    Tensor,
    mse_loss,
    softmax_cross_entropy,
)


def mlp(rng=None, dims=(8, 16, 16, 4)):
    rng = rng or np.random.default_rng(7)
    layers = []
    for i in range(len(dims) - 1):
        layers.append(Linear(dims[i], dims[i + 1], rng))
        if i < len(dims) - 2:
            layers.append(Tanh())
    return Sequential(*layers)


class TestLayers:
    def test_linear_shapes(self):
        lin = Linear(5, 3)
        out = lin(Tensor(np.ones((2, 5))))
        assert out.shape == (2, 3)

    def test_parameters_discovered(self):
        m = mlp()
        # 3 Linear layers x (weight, bias)
        assert len(m.parameters()) == 6

    def test_state_roundtrip(self):
        m = mlp()
        state = m.state()
        for p in m.parameters():
            p.data += 1.0
        m.load_state(state)
        for p, s in zip(m.parameters(), state):
            assert np.allclose(p.data, s)

    def test_load_state_mismatch(self):
        m = mlp()
        with pytest.raises(ValueError):
            m.load_state([np.zeros(2)])

    def test_slice_shares_parameters(self):
        m = mlp()
        sub = m.slice(0, 2)
        assert sub.modules[0] is m.modules[0]

    def test_slice_bad_range(self):
        with pytest.raises(IndexError):
            mlp().slice(2, 2)

    def test_relu_tanh_forward(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        assert np.allclose(ReLU()(x).data, [[0.0, 2.0]])
        assert np.allclose(Tanh()(x).data, np.tanh([[-1.0, 2.0]]))


class TestLosses:
    def test_mse_matches_manual(self):
        pred = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        target = Tensor(np.array([[0.0, 0.0]]))
        loss = mse_loss(pred, target)
        assert float(loss.data) == pytest.approx((1 + 4) / 2)

    def test_mse_normalizer_splits_exactly(self):
        rng = np.random.default_rng(1)
        pred = rng.standard_normal((8, 3))
        tgt = rng.standard_normal((8, 3))
        full = mse_loss(Tensor(pred), Tensor(tgt), normalizer=8.0)
        halves = sum(
            float(mse_loss(Tensor(pred[i : i + 4]), Tensor(tgt[i : i + 4]), normalizer=8.0).data)
            for i in (0, 4)
        )
        assert halves == pytest.approx(float(full.data))

    def test_cross_entropy_grad_matches_softmax_minus_onehot(self):
        logits_val = np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 0.0]])
        logits = Tensor(logits_val, requires_grad=True)
        labels = np.array([0, 2])
        loss = softmax_cross_entropy(logits, labels)
        loss.backward()
        z = logits_val - logits_val.max(axis=1, keepdims=True)
        probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
        one_hot = np.eye(3)[labels]
        assert np.allclose(logits.grad, (probs - one_hot) / 2)

    def test_cross_entropy_positive(self):
        logits = Tensor(np.zeros((4, 5)), requires_grad=True)
        loss = softmax_cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(5))


class TestOptimizers:
    def _quadratic_converges(self, opt_cls, **kw):
        # Minimize ||p||^2 with each optimizer.
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = opt_cls([p], **kw)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.linalg.norm(p.data) < 0.2

    def test_sgd_converges(self):
        self._quadratic_converges(SGD, lr=0.05, momentum=0.9)

    def test_adam_converges(self):
        self._quadratic_converges(Adam, lr=0.1)

    def test_rmsprop_converges(self):
        self._quadratic_converges(RMSProp, lr=0.05)

    def test_explicit_grads_path(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.0)
        opt.step([np.array([0.5])])
        assert np.allclose(p.data, [0.5])

    def test_grad_count_mismatch(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            opt.step([np.array([1.0]), np.array([1.0])])

    def test_missing_grad_rejected(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            opt.step()

    def test_bad_lr(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)

    def test_adam_bias_correction_first_step(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.step([np.array([1.0])])
        # First Adam step moves by ~lr regardless of gradient scale.
        assert p.data[0] == pytest.approx(-0.1, rel=1e-6)

"""Tests for optimizer extras: weight decay and gradient clipping."""

import numpy as np
import pytest

from repro.training import SGD, Adam, RMSProp, Tensor, clip_grad_norm


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        g = [np.array([3.0, 4.0])]  # norm 5
        norm = clip_grad_norm(g, 10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(g[0], [3.0, 4.0])

    def test_clips_to_max_norm(self):
        g = [np.array([3.0, 4.0])]
        norm = clip_grad_norm(g, 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(g[0]) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_tensors(self):
        g = [np.array([3.0]), np.array([4.0])]
        clip_grad_norm(g, 1.0)
        total = np.sqrt(sum(float((x * x).sum()) for x in g))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([np.array([1.0])], 0.0)

    def test_preserves_equivalence(self):
        """Clipping the reduced gradients keeps pipeline == sequential."""
        from repro.training import (
            Linear,
            PipelineTrainer,
            Sequential,
            Tanh,
            mse_loss,
            sequential_step_gradients,
        )

        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng), Tanh(), Linear(8, 2, rng))
        x = rng.standard_normal((8, 4))
        y = rng.standard_normal((8, 2))

        def loss_fn(pred, target, normalizer):
            return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)

        _, ref = sequential_step_gradients(model, x, y, loss_fn)
        tr = PipelineTrainer(model, [1], num_micro_batches=2)
        _, grads = tr.step_gradients(x, y, loss_fn)
        clip_grad_norm(ref, 0.5)
        clip_grad_norm(grads, 0.5)
        for a, b in zip(grads, ref):
            np.testing.assert_allclose(a, b, atol=1e-12)


class TestWeightDecay:
    @pytest.mark.parametrize("opt_cls", [SGD, Adam, RMSProp])
    def test_decay_shrinks_weights(self, opt_cls):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = opt_cls([p], lr=0.1, weight_decay=0.1)
        opt.step([np.array([0.0])])
        assert abs(p.data[0]) < 10.0

    def test_zero_decay_is_noop(self):
        p1 = Tensor(np.array([10.0]), requires_grad=True)
        p2 = Tensor(np.array([10.0]), requires_grad=True)
        SGD([p1], lr=0.1, momentum=0.0).step([np.array([1.0])])
        SGD([p2], lr=0.1, momentum=0.0, weight_decay=0.0).step([np.array([1.0])])
        np.testing.assert_allclose(p1.data, p2.data)

    def test_negative_decay_rejected(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, weight_decay=-1.0)

    def test_decoupled_decay_magnitude(self):
        # One step, zero gradient: w' = w(1 - lr*wd).
        p = Tensor(np.array([2.0]), requires_grad=True)
        SGD([p], lr=0.5, momentum=0.0, weight_decay=0.2).step([np.array([0.0])])
        assert p.data[0] == pytest.approx(2.0 * (1 - 0.5 * 0.2))

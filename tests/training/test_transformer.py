"""Tests for the numerical transformer blocks, including pipeline equivalence."""

import numpy as np
import pytest

from repro.training import Tensor, mse_loss, sequential_step_gradients
from repro.training.pipeline_trainer import PipelineTrainer
from repro.training.transformer import (
    FeedForward,
    MultiHeadSelfAttention,
    TransformerBlock,
    small_transformer,
)
from tests.training.test_autograd import numeric_grad


HIDDEN, HEADS, SEQ = 16, 4, 4


def tokens(batch_seqs: int, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch_seqs * SEQ, HIDDEN))


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(HIDDEN, HEADS, SEQ)
        out = attn(Tensor(tokens(3)))
        assert out.shape == (3 * SEQ, HIDDEN)

    def test_window_locality(self):
        """Attention never crosses sequence windows: perturbing window 1
        leaves window 0's output untouched."""
        attn = MultiHeadSelfAttention(HIDDEN, HEADS, SEQ)
        x = tokens(2)
        base = attn(Tensor(x)).data
        x2 = x.copy()
        x2[SEQ:] += 1.0
        out2 = attn(Tensor(x2)).data
        np.testing.assert_allclose(out2[:SEQ], base[:SEQ])
        assert not np.allclose(out2[SEQ:], base[SEQ:])

    def test_grad_matches_numeric(self):
        attn = MultiHeadSelfAttention(HIDDEN, HEADS, SEQ)
        x_val = tokens(1, seed=3)

        def forward_np(v):
            return attn(Tensor(v)).data

        x = Tensor(x_val.copy(), requires_grad=True)
        attn(x).sum().backward()
        num = numeric_grad(lambda v: forward_np(v).sum(), x_val.copy(), eps=1e-6)
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    def test_bad_hidden_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, SEQ)

    def test_bad_token_count(self):
        attn = MultiHeadSelfAttention(HIDDEN, HEADS, SEQ)
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((SEQ + 1, HIDDEN))))


class TestBlocks:
    def test_feedforward_shape(self):
        ff = FeedForward(HIDDEN)
        assert ff(Tensor(tokens(2))).shape == (2 * SEQ, HIDDEN)

    def test_block_residuals_preserve_shape(self):
        block = TransformerBlock(HIDDEN, HEADS, SEQ)
        assert block(Tensor(tokens(2))).shape == (2 * SEQ, HIDDEN)

    def test_parameters_discovered(self):
        block = TransformerBlock(HIDDEN, HEADS, SEQ)
        # 4 attn linears + 2 ff linears -> 12 tensors, + 2 layernorms -> 4.
        assert len(block.parameters()) == 16

    def test_stack_trains(self):
        from repro.training import Adam

        model = small_transformer(2, HIDDEN, HEADS, SEQ, out_dim=2)
        rng = np.random.default_rng(5)
        x = tokens(4, seed=5)
        y = rng.standard_normal((4 * SEQ, 2))

        def loss_fn(pred, target, normalizer):
            return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)

        opt = Adam(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(30):
            model.zero_grad()
            loss = loss_fn(model(Tensor(x)), y, float(len(x)))
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.8


class TestTransformerPipelineEquivalence:
    """The paper's workload family under DAPPLE semantics: exact gradients."""

    def _loss(self, pred, target, normalizer):
        return mse_loss(pred, Tensor(np.asarray(target)), normalizer=normalizer)

    def test_pipelined_transformer_matches_sequential(self):
        model = small_transformer(4, HIDDEN, HEADS, SEQ, out_dim=3)
        rng = np.random.default_rng(9)
        x = tokens(8, seed=9)  # 8 sequences of SEQ tokens
        y = rng.standard_normal((8 * SEQ, 3))
        _, ref = sequential_step_gradients(model, x, y, self._loss)
        # Micro-batches of 2 sequences each (slicing at window boundaries).
        tr = PipelineTrainer(model, split_points=[2], num_micro_batches=4)
        _, grads = tr.step_gradients(x, y, self._loss)
        for a, b in zip(grads, ref):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)

    def test_replicated_transformer_stage(self):
        model = small_transformer(2, HIDDEN, HEADS, SEQ, out_dim=3)
        rng = np.random.default_rng(11)
        x = tokens(8, seed=11)
        y = rng.standard_normal((8 * SEQ, 3))
        _, ref = sequential_step_gradients(model, x, y, self._loss)
        # Stage 0 replicated 2-way: each replica gets 1 sequence per
        # micro-batch (window-aligned slicing).
        tr = PipelineTrainer(model, [1], num_micro_batches=4, replicas=[2, 1])
        _, grads = tr.step_gradients(x, y, self._loss)
        for a, b in zip(grads, ref):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)
